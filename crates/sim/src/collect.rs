//! Metric accumulators shared by every experiment driver.

/// Streaming mean/min/max accumulator.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Mean {
    sum: f64,
    count: u64,
    min: f64,
    max: f64,
}

impl Mean {
    /// An empty accumulator.
    pub fn new() -> Self {
        Mean {
            sum: 0.0,
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn add(&mut self, x: f64) {
        self.sum += x;
        self.count += 1;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Current mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Observation count.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Minimum observation (`None` if empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Maximum observation (`None` if empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merges another accumulator in (for per-trial aggregation).
    pub fn merge(&mut self, other: &Mean) {
        self.sum += other.sum;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Integer-bucketed histogram with saturating overflow bucket.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
}

impl Histogram {
    /// Histogram over values `0..=max_value`; larger values land in the last
    /// bucket.
    pub fn new(max_value: usize) -> Self {
        Histogram {
            buckets: vec![0; max_value + 1],
        }
    }

    /// Records one value.
    pub fn record(&mut self, value: usize) {
        let idx = value.min(self.buckets.len() - 1);
        self.buckets[idx] += 1;
    }

    /// Count in bucket `value`.
    pub fn count(&self, value: usize) -> u64 {
        self.buckets.get(value).copied().unwrap_or(0)
    }

    /// All buckets.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Total recorded observations.
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Mean of the recorded values (overflow bucket counted at its index).
    pub fn mean(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let sum: f64 = self
            .buckets
            .iter()
            .enumerate()
            .map(|(v, &c)| v as f64 * c as f64)
            .sum();
        sum / total as f64
    }

    /// Value at or below which `q` of the mass lies (`q` in the unit interval).
    pub fn quantile(&self, q: f64) -> usize {
        let total = self.total();
        if total == 0 {
            return 0;
        }
        let want = (q.clamp(0.0, 1.0) * total as f64).ceil().max(1.0) as u64;
        let mut acc = 0;
        for (v, &c) in self.buckets.iter().enumerate() {
            acc += c;
            if acc >= want {
                return v;
            }
        }
        self.buckets.len() - 1
    }
}

/// Load-balance view: per-degree message-forwarding shares (paper Fig. 4).
#[derive(Clone, Debug, Default)]
pub struct LoadByDegree {
    /// `(degree, messages_forwarded)` accumulated per peer degree bucket.
    entries: std::collections::BTreeMap<usize, u64>,
    total: u64,
}

impl LoadByDegree {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that a peer of social degree `degree` forwarded `count`
    /// messages.
    pub fn record(&mut self, degree: usize, count: u64) {
        *self.entries.entry(degree).or_insert(0) += count;
        self.total += count;
    }

    /// Percentage of all forwarded messages handled by peers of `degree`.
    pub fn percentage_at(&self, degree: usize) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        100.0 * self.entries.get(&degree).copied().unwrap_or(0) as f64 / self.total as f64
    }

    /// `(degree, percentage)` series, ascending by degree.
    pub fn series(&self) -> Vec<(usize, f64)> {
        self.entries
            .keys()
            .map(|&d| (d, self.percentage_at(d)))
            .collect()
    }

    /// Gini coefficient of the load distribution: 0 = perfectly balanced.
    pub fn gini(&self) -> f64 {
        let loads: Vec<f64> = self.entries.values().map(|&v| v as f64).collect();
        gini(&loads)
    }
}

/// Gini coefficient of a set of non-negative values.
pub fn gini(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let n = sorted.len() as f64;
    let sum: f64 = sorted.iter().sum();
    if sum == 0.0 {
        return 0.0;
    }
    let weighted: f64 = sorted
        .iter()
        .enumerate()
        .map(|(i, &x)| (i as f64 + 1.0) * x)
        .sum();
    (2.0 * weighted) / (n * sum) - (n + 1.0) / n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_accumulator() {
        let mut m = Mean::new();
        for x in [1.0, 2.0, 3.0] {
            m.add(x);
        }
        assert!((m.mean() - 2.0).abs() < 1e-12);
        assert_eq!(m.min(), Some(1.0));
        assert_eq!(m.max(), Some(3.0));
        assert_eq!(m.count(), 3);
    }

    #[test]
    fn mean_empty_and_merge() {
        let empty = Mean::new();
        assert_eq!(empty.mean(), 0.0);
        assert_eq!(empty.min(), None);
        let mut a = Mean::new();
        a.add(1.0);
        let mut b = Mean::new();
        b.add(3.0);
        a.merge(&b);
        assert!((a.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_basics() {
        let mut h = Histogram::new(4);
        for v in [0, 1, 1, 2, 9] {
            h.record(v);
        }
        assert_eq!(h.count(1), 2);
        assert_eq!(h.count(4), 1, "overflow saturates into last bucket");
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn histogram_mean_and_quantile() {
        let mut h = Histogram::new(10);
        for v in [1, 2, 3, 4, 5] {
            h.record(v);
        }
        assert!((h.mean() - 3.0).abs() < 1e-12);
        assert_eq!(h.quantile(0.5), 3);
        assert_eq!(h.quantile(1.0), 5);
        assert_eq!(Histogram::new(3).quantile(0.5), 0);
    }

    #[test]
    fn load_by_degree_percentages() {
        let mut l = LoadByDegree::new();
        l.record(10, 30);
        l.record(100, 70);
        assert!((l.percentage_at(10) - 30.0).abs() < 1e-12);
        assert!((l.percentage_at(100) - 70.0).abs() < 1e-12);
        assert_eq!(l.percentage_at(5), 0.0);
        assert_eq!(l.series().len(), 2);
    }

    #[test]
    fn gini_extremes() {
        assert!((gini(&[1.0, 1.0, 1.0, 1.0])).abs() < 1e-12, "equal = 0");
        let concentrated = gini(&[0.0, 0.0, 0.0, 100.0]);
        assert!(concentrated > 0.7, "concentration should be near 1");
        assert_eq!(gini(&[]), 0.0);
        assert_eq!(gini(&[0.0, 0.0]), 0.0);
    }
}
