//! Execution engines: synchronous supersteps and a discrete-event queue.
//!
//! [`SuperstepEngine`] reproduces the paper's Gelly/Flink vertex-centric
//! model: every round, each active vertex consumes the messages addressed to
//! it in the previous round and emits messages for the next. Delivery order
//! within a round is by sender index, so runs are bit-for-bit reproducible.
//!
//! [`EventQueue`] is a classic discrete-event scheduler (time-ordered heap
//! with a tie-breaking sequence number) used by the latency-aware realistic
//! experiments where message arrival times are continuous.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Runs one vertex, tagging any panic with its (shard, vertex) coordinates
/// so a poisoned vertex in a million-peer run is diagnosable from the abort
/// message alone — the re-raised payload is the formatted culprit string.
fn run_vertex_caught<R>(shard: usize, vertex: u32, f: impl FnOnce() -> R) -> R {
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(r) => r,
        Err(payload) => panic!(
            "superstep shard {shard} panicked at vertex {vertex}: {}",
            panic_message(payload.as_ref())
        ),
    }
}

/// Per-shard scratch state owned by [`ShardArenas`]: reusable arenas handed
/// to superstep workers so the compute half allocates nothing per round.
pub trait ShardScratch: Default + Send {
    /// Called on each shard when an arena epoch begins (once per superstep),
    /// before the shard is handed to a worker. Implementations reset
    /// per-round accumulators here; epoch-stamped buffers can instead lazily
    /// invalidate entries against `epoch`.
    fn begin_epoch(&mut self, epoch: u64);
}

/// A pool of per-shard scratch arenas, epoch-stamped so reuse across
/// supersteps needs no O(n) clearing. Call [`ShardArenas::begin`] at the top
/// of each superstep to obtain `count` freshly-stamped shards; after the
/// step, merge shard accumulators **in shard order** at the apply barrier
/// via [`ShardArenas::active`] — that order is what keeps commutative
/// accumulators bit-identical across thread counts.
#[derive(Clone, Debug, Default)]
pub struct ShardArenas<S> {
    epoch: u64,
    active: usize,
    shards: Vec<S>,
}

impl<S: ShardScratch> ShardArenas<S> {
    /// An empty arena pool at epoch 0.
    pub fn new() -> Self {
        ShardArenas {
            epoch: 0,
            active: 0,
            shards: Vec::new(),
        }
    }

    /// Current epoch (0 before the first `begin`).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Starts a new epoch and hands out `count` stamped shards. Shards are
    /// grown on demand and retained across epochs, so steady-state rounds
    /// reuse the same allocations.
    pub fn begin(&mut self, count: usize) -> &mut [S] {
        let count = count.max(1);
        self.epoch += 1;
        if self.shards.len() < count {
            self.shards.resize_with(count, S::default);
        }
        self.active = count;
        let epoch = self.epoch;
        let shards = &mut self.shards[..count];
        for s in shards.iter_mut() {
            s.begin_epoch(epoch);
        }
        shards
    }

    /// The shards handed out by the most recent `begin`, for merging at the
    /// apply barrier.
    pub fn active(&self) -> &[S] {
        &self.shards[..self.active]
    }

    /// Mutable view of the most recent `begin`'s shards.
    pub fn active_mut(&mut self) -> &mut [S] {
        &mut self.shards[..self.active]
    }
}

/// Synchronous vertex-centric message-passing engine.
///
/// `M` is the message type. Vertices are dense `u32` ids. The engine owns
/// only the mailboxes; vertex state lives with the caller, keeping the engine
/// reusable across SELECT and the baselines.
#[derive(Clone, Debug)]
pub struct SuperstepEngine<M> {
    inboxes: Vec<Vec<M>>,
    outboxes: Vec<(u32, M)>,
    round: usize,
    messages_sent_total: u64,
}

impl<M> SuperstepEngine<M> {
    /// Engine for `n` vertices.
    pub fn new(n: usize) -> Self {
        SuperstepEngine {
            inboxes: (0..n).map(|_| Vec::new()).collect(),
            outboxes: Vec::new(),
            round: 0,
            messages_sent_total: 0,
        }
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.inboxes.len()
    }

    /// True if the engine has no vertices.
    pub fn is_empty(&self) -> bool {
        self.inboxes.is_empty()
    }

    /// Current round number (0 before the first `step`).
    pub fn round(&self) -> usize {
        self.round
    }

    /// Total messages sent since construction.
    pub fn messages_sent_total(&self) -> u64 {
        self.messages_sent_total
    }

    /// Queues a message from the current round to vertex `to` for delivery
    /// next round.
    pub fn send(&mut self, to: u32, msg: M) {
        debug_assert!((to as usize) < self.inboxes.len());
        self.outboxes.push((to, msg));
        self.messages_sent_total += 1;
    }

    /// Runs one superstep: delivers last round's messages by calling
    /// `vertex_fn(vertex, messages, engine)` for every vertex that has mail
    /// or when `run_all` demands every vertex be ticked.
    ///
    /// Returns the number of messages delivered this round.
    pub fn step(
        &mut self,
        run_all: bool,
        mut vertex_fn: impl FnMut(u32, Vec<M>, &mut Self),
    ) -> usize {
        // Swap the pending sends into the inboxes.
        let pending = std::mem::take(&mut self.outboxes);
        let delivered = pending.len();
        for (to, msg) in pending {
            self.inboxes[to as usize].push(msg);
        }
        self.round += 1;
        for v in 0..self.inboxes.len() as u32 {
            let mail = std::mem::take(&mut self.inboxes[v as usize]);
            if run_all || !mail.is_empty() {
                vertex_fn(v, mail, self);
            }
        }
        delivered
    }

    /// Whether any message is queued for the next round.
    pub fn has_pending(&self) -> bool {
        !self.outboxes.is_empty()
    }
}

impl<M: Send> SuperstepEngine<M> {
    /// Parallel superstep: vertices are sharded across `threads` crossbeam
    /// scoped threads; each vertex may read shared state and emit messages
    /// through its shard-local outbox. Outboxes are merged **in vertex
    /// order**, so the observable behaviour is bit-identical to
    /// [`SuperstepEngine::step`] when the vertex function is deterministic
    /// and only writes through the outbox.
    ///
    /// Unlike `step`, the vertex function receives no `&mut Self` — state it
    /// mutates must be vertex-partitioned by the caller (e.g. a slice of
    /// per-vertex cells) to stay data-race free.
    ///
    /// With `threads <= 1` the superstep runs inline on the calling thread —
    /// no scope or spawn overhead — through the exact same code path a
    /// single shard would take, so `threads = 1` remains the reference
    /// behaviour larger counts must reproduce.
    pub fn step_parallel(
        &mut self,
        run_all: bool,
        threads: usize,
        vertex_fn: impl Fn(u32, Vec<M>, &mut Vec<(u32, M)>) + Sync,
    ) -> usize {
        let pending = std::mem::take(&mut self.outboxes);
        let delivered = pending.len();
        for (to, msg) in pending {
            self.inboxes[to as usize].push(msg);
        }
        self.round += 1;

        let n = self.inboxes.len();
        let threads = threads.clamp(1, n.max(1));
        if threads == 1 {
            let mut out: Vec<(u32, M)> = Vec::new();
            for v in 0..n as u32 {
                let mail = std::mem::take(&mut self.inboxes[v as usize]);
                if run_all || !mail.is_empty() {
                    run_vertex_caught(0, v, || vertex_fn(v, mail, &mut out));
                }
            }
            for (to, msg) in out {
                self.send(to, msg);
            }
            return delivered;
        }
        let chunk = n.div_ceil(threads);
        // Take the inboxes out so shards own their slices.
        let mut inboxes = std::mem::take(&mut self.inboxes);
        let mut shard_outboxes: Vec<Vec<(u32, M)>> = Vec::with_capacity(threads);
        let mut worker_panic: Option<Box<dyn std::any::Any + Send>> = None;

        crossbeam::scope(|scope| {
            let handles: Vec<_> = inboxes
                .chunks_mut(chunk.max(1))
                .enumerate()
                .map(|(shard, slice)| {
                    let vertex_fn = &vertex_fn;
                    scope.spawn(move |_| {
                        let mut out: Vec<(u32, M)> = Vec::new();
                        for (i, mail) in slice.iter_mut().enumerate() {
                            let v = (shard * chunk + i) as u32;
                            let mail = std::mem::take(mail);
                            if run_all || !mail.is_empty() {
                                run_vertex_caught(shard, v, || vertex_fn(v, mail, &mut out));
                            }
                        }
                        out
                    })
                })
                .collect();
            // Join every handle before leaving the scope; the first worker
            // panic is re-raised outside it with its culprit tag intact.
            for h in handles {
                match h.join() {
                    Ok(out) => shard_outboxes.push(out),
                    Err(payload) => {
                        worker_panic.get_or_insert(payload);
                    }
                }
            }
        })
        .expect("superstep scope failed");
        if let Some(payload) = worker_panic {
            resume_unwind(payload);
        }

        self.inboxes = inboxes;
        // Deterministic merge: shards are already in vertex order.
        for out in shard_outboxes {
            for (to, msg) in out {
                self.send(to, msg);
            }
        }
        delivered
    }

    /// [`SuperstepEngine::step_parallel`] with per-worker shard state: worker
    /// `i` receives exclusive `&mut shards[i]` alongside its vertices, so the
    /// compute half can accumulate side metrics (histograms, counters)
    /// without any shared mutable state. The worker count is
    /// `shards.len()` (clamped to the vertex count); the caller merges the
    /// shards **in shard order** after this returns — the superstep apply
    /// barrier — which keeps any commutative accumulator bit-identical
    /// across thread counts.
    ///
    /// # Panics
    /// Panics if `shards` is empty.
    pub fn step_parallel_sharded<S: Send>(
        &mut self,
        run_all: bool,
        shards: &mut [S],
        vertex_fn: impl Fn(u32, Vec<M>, &mut Vec<(u32, M)>, &mut S) + Sync,
    ) -> usize {
        assert!(!shards.is_empty(), "need at least one shard");
        let pending = std::mem::take(&mut self.outboxes);
        let delivered = pending.len();
        for (to, msg) in pending {
            self.inboxes[to as usize].push(msg);
        }
        self.round += 1;

        let n = self.inboxes.len();
        let threads = shards.len().clamp(1, n.max(1));
        if threads == 1 {
            let mut out: Vec<(u32, M)> = Vec::new();
            for v in 0..n as u32 {
                let mail = std::mem::take(&mut self.inboxes[v as usize]);
                if run_all || !mail.is_empty() {
                    run_vertex_caught(0, v, || vertex_fn(v, mail, &mut out, &mut shards[0]));
                }
            }
            for (to, msg) in out {
                self.send(to, msg);
            }
            return delivered;
        }
        let chunk = n.div_ceil(threads);
        let mut inboxes = std::mem::take(&mut self.inboxes);
        let mut shard_outboxes: Vec<Vec<(u32, M)>> = Vec::with_capacity(threads);
        let mut worker_panic: Option<Box<dyn std::any::Any + Send>> = None;

        crossbeam::scope(|scope| {
            let handles: Vec<_> = inboxes
                .chunks_mut(chunk.max(1))
                .zip(shards.iter_mut())
                .enumerate()
                .map(|(shard, (slice, state))| {
                    let vertex_fn = &vertex_fn;
                    scope.spawn(move |_| {
                        let mut out: Vec<(u32, M)> = Vec::new();
                        for (i, mail) in slice.iter_mut().enumerate() {
                            let v = (shard * chunk + i) as u32;
                            let mail = std::mem::take(mail);
                            if run_all || !mail.is_empty() {
                                run_vertex_caught(shard, v, || vertex_fn(v, mail, &mut out, state));
                            }
                        }
                        out
                    })
                })
                .collect();
            for h in handles {
                match h.join() {
                    Ok(out) => shard_outboxes.push(out),
                    Err(payload) => {
                        worker_panic.get_or_insert(payload);
                    }
                }
            }
        })
        .expect("superstep scope failed");
        if let Some(payload) = worker_panic {
            resume_unwind(payload);
        }

        self.inboxes = inboxes;
        for out in shard_outboxes {
            for (to, msg) in out {
                self.send(to, msg);
            }
        }
        delivered
    }

    /// [`SuperstepEngine::step_parallel_sharded`] with arena-managed shard
    /// state: begins a fresh epoch on `arenas`, hands each of the `threads`
    /// workers its stamped scratch shard, and runs the superstep. After this
    /// returns, merge accumulators from [`ShardArenas::active`] in shard
    /// order — the apply barrier — then apply with [`SuperstepEngine::step`].
    /// The arenas persist across rounds, so steady state allocates nothing.
    pub fn step_parallel_arena<S: ShardScratch>(
        &mut self,
        run_all: bool,
        threads: usize,
        arenas: &mut ShardArenas<S>,
        vertex_fn: impl Fn(u32, Vec<M>, &mut Vec<(u32, M)>, &mut S) + Sync,
    ) -> usize {
        let shards = arenas.begin(threads);
        self.step_parallel_sharded(run_all, shards, vertex_fn)
    }
}

/// A time-stamped event scheduler with stable FIFO tie-breaking.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<(u64, u64)>>,
    payloads: std::collections::HashMap<u64, (u64, E)>,
    seq: u64,
    now: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue at time 0.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            payloads: std::collections::HashMap::new(),
            seq: 0,
            now: 0,
        }
    }

    /// Current virtual time (time of the last popped event).
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `event` at absolute time `at` (must not precede `now`).
    ///
    /// # Panics
    /// Panics if `at < now` — causality violation.
    pub fn schedule(&mut self, at: u64, event: E) {
        assert!(at >= self.now, "cannot schedule into the past");
        let id = self.seq;
        self.seq += 1;
        self.heap.push(Reverse((at, id)));
        self.payloads.insert(id, (at, event));
    }

    /// Pops the earliest event, advancing `now`.
    pub fn pop(&mut self) -> Option<(u64, E)> {
        let Reverse((at, id)) = self.heap.pop()?;
        self.now = at;
        let (_, e) = self.payloads.remove(&id).expect("payload exists");
        Some((at, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn superstep_delivers_next_round() {
        let mut eng: SuperstepEngine<u32> = SuperstepEngine::new(3);
        eng.send(1, 99);
        // Round 1: vertex 1 gets the message; it forwards to 2.
        let delivered = eng.step(false, |v, mail, eng| {
            assert_eq!(v, 1);
            assert_eq!(mail, vec![99]);
            eng.send(2, 100);
        });
        assert_eq!(delivered, 1);
        // Round 2: vertex 2 gets it.
        let mut seen = Vec::new();
        eng.step(false, |v, mail, _| seen.push((v, mail)));
        assert_eq!(seen, vec![(2, vec![100])]);
        assert_eq!(eng.round(), 2);
        assert_eq!(eng.messages_sent_total(), 2);
    }

    #[test]
    fn run_all_ticks_every_vertex() {
        let mut eng: SuperstepEngine<()> = SuperstepEngine::new(4);
        let mut ticked = Vec::new();
        eng.step(true, |v, _, _| ticked.push(v));
        assert_eq!(ticked, vec![0, 1, 2, 3]);
    }

    #[test]
    fn quiescence_detection() {
        let mut eng: SuperstepEngine<u8> = SuperstepEngine::new(2);
        eng.send(0, 1);
        assert!(eng.has_pending());
        eng.step(false, |_, _, _| {});
        assert!(!eng.has_pending());
    }

    #[test]
    fn parallel_step_matches_sequential() {
        // Ring-forwarding program: every vertex forwards (value + 1) to the
        // next vertex; deterministic, so both execution modes must agree.
        let n = 64usize;
        let run = |parallel: bool| -> Vec<(usize, u64)> {
            let mut eng: SuperstepEngine<u64> = SuperstepEngine::new(n);
            eng.send(0, 1);
            let mut trace = Vec::new();
            for round in 0..20 {
                if parallel {
                    eng.step_parallel(false, 4, |v, mail, out| {
                        for m in mail {
                            out.push(((v + 1) % n as u32, m + 1));
                        }
                    });
                } else {
                    eng.step(false, |v, mail, eng| {
                        for m in mail {
                            eng.send((v + 1) % n as u32, m + 1);
                        }
                    });
                }
                trace.push((round, eng.messages_sent_total()));
            }
            trace
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn parallel_step_fanout_deterministic_merge() {
        // Every vertex broadcasts to all; merge order must be vertex order,
        // making repeated runs identical.
        let n = 16usize;
        let run = || -> Vec<u32> {
            let mut eng: SuperstepEngine<u32> = SuperstepEngine::new(n);
            for v in 0..n as u32 {
                eng.send(v, v);
            }
            eng.step_parallel(false, 3, |v, _mail, out| {
                for t in 0..n as u32 {
                    out.push((t, v));
                }
            });
            // Inspect delivery order next round.
            let mut seen = Vec::new();
            eng.step(false, |_, mail, _| seen.extend(mail));
            seen
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn parallel_step_run_all_covers_every_vertex() {
        let mut eng: SuperstepEngine<()> = SuperstepEngine::new(10);
        let hits = std::sync::atomic::AtomicUsize::new(0);
        eng.step_parallel(true, 4, |_, _, _| {
            hits.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        });
        assert_eq!(hits.into_inner(), 10);
    }

    #[test]
    fn compute_apply_handoff_thread_sweep() {
        // Model of the gossip round's compute→apply handoff (the pattern the
        // SELECT round loop relies on for bit-identical runs): the compute
        // half reads a shared snapshot immutably across shards and proposes
        // updates through the outbox; the apply half mutates state in vertex
        // order on the calling thread and feeds mail into the next round.
        // The full observable trace — final state, every applied mutation in
        // order, and the message count — must be identical at every thread
        // count, including ragged shard boundaries (37 % {2, 3, 8} != 0).
        let n = 37usize;
        let run = |threads: usize| -> (Vec<u64>, Vec<(u32, u64)>, u64) {
            let mut state: Vec<u64> = (0..n as u64).map(|v| v.wrapping_mul(0x9e37_79b9)).collect();
            let mut eng: SuperstepEngine<u64> = SuperstepEngine::new(n);
            let mut trace: Vec<(u32, u64)> = Vec::new();
            for round in 0..12u64 {
                let snapshot = &state;
                // Compute: a pure function of the snapshot and this round's
                // mail, fanned out over `threads` shards.
                eng.step_parallel(true, threads, |v, mail, out| {
                    let left = snapshot[(v as usize + n - 1) % n];
                    let right = snapshot[(v as usize + 1) % n];
                    let inbox: u64 = mail.iter().fold(0u64, |a, &m| a.wrapping_add(m));
                    let proposal = snapshot[v as usize]
                        ^ left.wrapping_mul(3)
                        ^ right.rotate_left(7)
                        ^ inbox
                        ^ round;
                    out.push((v, proposal));
                    if proposal.is_multiple_of(3) {
                        out.push(((v + 5) % n as u32, proposal));
                    }
                });
                // Apply: sequential, in vertex order; occasionally emits
                // mail for the next round's compute half.
                eng.step(false, |v, mail, eng| {
                    for m in mail {
                        state[v as usize] = state[v as usize].wrapping_add(m).rotate_left(13);
                        trace.push((v, state[v as usize]));
                        if m.is_multiple_of(7) {
                            eng.send((v + 1) % n as u32, m >> 1);
                        }
                    }
                });
            }
            (state, trace, eng.messages_sent_total())
        };
        let reference = run(1);
        for threads in [2, 3, 8] {
            assert_eq!(run(threads), reference, "threads={threads} diverged");
        }
    }

    #[test]
    fn sharded_step_accumulators_merge_identically_across_thread_counts() {
        // Each worker folds per-vertex values into its own shard; merging the
        // shards in shard order must give the same totals (and the same
        // message trace) for every worker count, ragged boundaries included.
        let n = 29usize;
        let run = |threads: usize| -> (Vec<u64>, u64) {
            let mut eng: SuperstepEngine<u64> = SuperstepEngine::new(n);
            let mut merged: Vec<u64> = Vec::new();
            for round in 0..5u64 {
                let mut shards: Vec<Vec<u64>> = vec![Vec::new(); threads];
                eng.step_parallel_sharded(true, &mut shards, |v, _mail, out, acc| {
                    acc.push((v as u64).wrapping_mul(round + 1));
                    if v.is_multiple_of(3) {
                        out.push(((v + 1) % n as u32, round));
                    }
                });
                // Apply barrier: merge in shard order.
                for s in shards {
                    merged.extend(s);
                }
            }
            (merged, eng.messages_sent_total())
        };
        let reference = run(1);
        for threads in [2, 4, 8] {
            assert_eq!(run(threads), reference, "threads={threads} diverged");
        }
    }

    /// Shard state used by the arena tests: counts vertices seen this epoch
    /// and remembers how often it was re-stamped.
    #[derive(Clone, Debug, Default)]
    struct CountShard {
        epoch: u64,
        epochs_seen: u64,
        seen: Vec<u32>,
    }

    impl ShardScratch for CountShard {
        fn begin_epoch(&mut self, epoch: u64) {
            self.epoch = epoch;
            self.epochs_seen += 1;
            self.seen.clear();
        }
    }

    #[test]
    fn poisoned_vertex_panic_names_shard_and_vertex() {
        // A panic inside the compute half must surface the shard index and
        // the vertex id, not just "superstep shard panicked".
        let caught = std::panic::catch_unwind(|| {
            let mut eng: SuperstepEngine<()> = SuperstepEngine::new(32);
            eng.step_parallel(true, 4, |v, _mail, _out| {
                if v == 19 {
                    panic!("poisoned state");
                }
            });
        })
        .expect_err("the poisoned vertex must abort the superstep");
        let msg = panic_message(caught.as_ref());
        // 32 vertices over 4 shards → chunk 8, vertex 19 lives in shard 2.
        assert!(
            msg.contains("shard 2") && msg.contains("vertex 19") && msg.contains("poisoned state"),
            "panic message must name the culprit, got: {msg}"
        );
    }

    #[test]
    fn poisoned_vertex_panic_names_culprit_inline_and_sharded() {
        // Same contract on the threads=1 inline path and the sharded variant.
        let inline = std::panic::catch_unwind(|| {
            let mut eng: SuperstepEngine<()> = SuperstepEngine::new(4);
            eng.step_parallel(true, 1, |v, _mail, _out| {
                if v == 3 {
                    panic!("inline poison");
                }
            });
        })
        .expect_err("inline superstep must abort");
        let msg = panic_message(inline.as_ref());
        assert!(
            msg.contains("vertex 3") && msg.contains("inline poison"),
            "inline panic must name the vertex, got: {msg}"
        );

        let sharded = std::panic::catch_unwind(|| {
            let mut eng: SuperstepEngine<()> = SuperstepEngine::new(12);
            let mut shards: Vec<Vec<u32>> = vec![Vec::new(); 3];
            eng.step_parallel_sharded(true, &mut shards, |v, _mail, _out, _s| {
                if v == 9 {
                    panic!("sharded poison");
                }
            });
        })
        .expect_err("sharded superstep must abort");
        let msg = panic_message(sharded.as_ref());
        // 12 vertices over 3 shards → chunk 4, vertex 9 lives in shard 2.
        assert!(
            msg.contains("shard 2") && msg.contains("vertex 9") && msg.contains("sharded poison"),
            "sharded panic must name the culprit, got: {msg}"
        );
    }

    #[test]
    fn arena_superstep_thread_sweep_is_deterministic() {
        // The per-shard-arena superstep must produce the same merged
        // accumulator trace and message totals at every worker count,
        // with arenas persisting (and re-stamping) across rounds.
        let n = 41usize;
        let run = |threads: usize| -> (Vec<u32>, u64, u64) {
            let mut eng: SuperstepEngine<u64> = SuperstepEngine::new(n);
            let mut arenas: ShardArenas<CountShard> = ShardArenas::new();
            let mut merged: Vec<u32> = Vec::new();
            for round in 0..6u64 {
                eng.step_parallel_arena(true, threads, &mut arenas, |v, _mail, out, s| {
                    assert_eq!(s.epoch, round + 1, "stale shard epoch");
                    s.seen.push(v);
                    if v.is_multiple_of(5) {
                        out.push(((v + 7) % n as u32, round));
                    }
                });
                // Apply barrier: merge shard accumulators in shard order.
                for s in arenas.active() {
                    merged.extend_from_slice(&s.seen);
                }
                eng.step(false, |_v, _mail, _eng| {});
            }
            (merged, eng.messages_sent_total(), arenas.epoch())
        };
        let reference = run(1);
        // Every vertex appears exactly once per round in the merged trace.
        assert_eq!(reference.0.len(), n * 6);
        for threads in [2, 3, 8] {
            assert_eq!(run(threads), reference, "threads={threads} diverged");
        }
    }

    #[test]
    fn arena_shards_are_reused_and_restamped() {
        let mut arenas: ShardArenas<CountShard> = ShardArenas::new();
        assert_eq!(arenas.epoch(), 0);
        let shards = arenas.begin(3);
        assert_eq!(shards.len(), 3);
        assert!(shards.iter().all(|s| s.epoch == 1 && s.epochs_seen == 1));
        // Shrinking the active count keeps the extra shard allocated but
        // outside the active window; growing re-stamps everything.
        let shards = arenas.begin(2);
        assert_eq!(shards.len(), 2);
        assert_eq!(arenas.active().len(), 2);
        let shards = arenas.begin(4);
        assert_eq!(shards.len(), 4);
        // The first two shards were stamped in all three epochs, the third
        // in two, the fourth only in the last.
        assert_eq!(shards[0].epochs_seen, 3);
        assert_eq!(shards[2].epochs_seen, 2);
        assert_eq!(shards[3].epochs_seen, 1);
        assert_eq!(arenas.epoch(), 3);
        // begin(0) still hands out one shard: a superstep needs a worker.
        assert_eq!(arenas.begin(0).len(), 1);
    }

    #[test]
    fn event_queue_orders_by_time_then_fifo() {
        let mut q: EventQueue<&str> = EventQueue::new();
        q.schedule(10, "b");
        q.schedule(5, "a");
        q.schedule(10, "c");
        assert_eq!(q.pop(), Some((5, "a")));
        assert_eq!(q.now(), 5);
        assert_eq!(q.pop(), Some((10, "b")), "FIFO within equal times");
        assert_eq!(q.pop(), Some((10, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    #[should_panic(expected = "past")]
    fn scheduling_into_past_panics() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.schedule(10, ());
        q.pop();
        q.schedule(5, ());
    }

    #[test]
    fn interleaved_scheduling() {
        let mut q: EventQueue<u32> = EventQueue::new();
        q.schedule(1, 1);
        let (t, e) = q.pop().unwrap();
        assert_eq!((t, e), (1, 1));
        q.schedule(3, 3);
        q.schedule(2, 2);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
        assert!(q.is_empty());
    }
}
