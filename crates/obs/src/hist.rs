//! Fixed-size log-bucketed histograms (HDR-lite) with deterministic merge.
//!
//! The paper's evaluation (Figs. 5–7) reports *distributions* — hop counts,
//! relay load, notification latency — so the observability layer records
//! full histograms, not means. The design constraints come from the rest of
//! the workspace:
//!
//! * **No ambient time.** Values are integers in domain units (hops, virtual
//!   milliseconds from `osn_sim::latency`, retry attempts). Nothing in this
//!   crate reads a clock; selint L2 covers `crates/obs/src/`.
//! * **Deterministic merge.** Buckets are `u64` counters and merging is
//!   bucket-wise addition — commutative and associative — so sharded
//!   per-thread recorders merged at the superstep apply barrier produce
//!   bit-identical totals at any thread count.
//! * **Bounded, allocation-light.** The bucket array has a fixed compile-time
//!   size and is lazily boxed on the first `record`, so an empty histogram
//!   is a single `None` and `Default` costs nothing on the publish hot path.
//!
//! Bucketing follows the HDR idea with `SUB_BITS = 4` sub-bucket precision:
//! values below 16 are exact (hop counts and retry attempts never leave this
//! range in practice), and larger values land in buckets of ≤ 6.25% relative
//! width — plenty for p50/p95/p99 latency tails.

/// Sub-bucket precision bits: 2^4 = 16 sub-buckets per power of two.
const SUB_BITS: u32 = 4;
/// Sub-buckets per log segment.
const SUBS: usize = 1 << SUB_BITS;
/// Number of log segments above the exact range (u64 domain).
const SEGMENTS: usize = 64 - SUB_BITS as usize;
/// Total bucket count: one exact segment plus `SEGMENTS` log segments.
pub const BUCKETS: usize = SUBS * (SEGMENTS + 1);

/// Maps a value to its bucket index. Values `< 16` map to themselves
/// (exact); above that, `shift = msb − SUB_BITS` selects the log segment
/// and the top `SUB_BITS` bits below the msb select the sub-bucket.
#[inline]
fn bucket_of(v: u64) -> usize {
    if v < SUBS as u64 {
        v as usize
    } else {
        let shift = (63 - v.leading_zeros()) - SUB_BITS;
        let sub = ((v >> shift) & (SUBS as u64 - 1)) as usize;
        SUBS * (1 + shift as usize) + sub
    }
}

/// Lower bound of the value range covered by bucket `idx` — the value
/// quantiles report. Inverse of [`bucket_of`] up to bucket granularity.
#[inline]
fn bucket_floor(idx: usize) -> u64 {
    if idx < SUBS {
        idx as u64
    } else {
        let shift = (idx / SUBS - 1) as u32;
        let sub = (idx % SUBS) as u64;
        (SUBS as u64 + sub) << shift
    }
}

/// A fixed-size log-bucketed histogram over `u64` values.
///
/// Equality compares logical contents (an all-zero boxed array equals the
/// unallocated empty histogram), so telemetry equality pins stay meaningful.
#[derive(Clone, Debug, Default)]
pub struct Histogram {
    /// Lazily allocated bucket counters; `None` means "never recorded".
    buckets: Option<Box<[u64; BUCKETS]>>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Histogram {
    /// An empty histogram. No allocation until the first [`record`].
    ///
    /// [`record`]: Histogram::record
    pub fn new() -> Self {
        Self::default()
    }

    /// A histogram with its bucket array preallocated, for hot paths that
    /// must not allocate while recording.
    pub fn preallocated() -> Self {
        let mut h = Self::default();
        h.touch();
        h
    }

    #[inline]
    fn touch(&mut self) -> &mut [u64; BUCKETS] {
        self.buckets.get_or_insert_with(|| Box::new([0; BUCKETS]))
    }

    /// Records one observation of `v`.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.record_n(v, 1);
    }

    /// Records `n` observations of `v` at once.
    #[inline]
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += n;
        self.sum += v.saturating_mul(n);
        self.touch()[bucket_of(v)] += n;
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded value, or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value, or 0 when empty.
    pub fn max(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.max
        }
    }

    /// Mean of recorded values, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Value at quantile `q` in `[0, 1]`: the lower bound of the bucket
    /// holding the observation of rank `ceil(q · count)`. Values below 16
    /// are exact; above that the answer is within the bucket's ≤ 6.25%
    /// relative width. Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        let Some(buckets) = &self.buckets else {
            return 0;
        };
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, &c) in buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_floor(idx);
            }
        }
        self.max
    }

    /// Convenience: `(p50, p95, p99)`.
    pub fn tails(&self) -> (u64, u64, u64) {
        (
            self.quantile(0.50),
            self.quantile(0.95),
            self.quantile(0.99),
        )
    }

    /// Merges `other` into `self` by bucket-wise addition. Commutative and
    /// associative, so any merge order (shard order, thread count) yields
    /// bit-identical totals.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        let dst = self.touch();
        if let Some(src) = &other.buckets {
            for (d, s) in dst.iter_mut().zip(src.iter()) {
                *d += *s;
            }
        }
    }

    /// Clears all counters, keeping the bucket allocation for reuse.
    pub fn reset(&mut self) {
        self.count = 0;
        self.sum = 0;
        self.min = 0;
        self.max = 0;
        if let Some(b) = &mut self.buckets {
            b.fill(0);
        }
    }

    /// Iterates non-empty buckets as `(lower_bound, count)` pairs, in
    /// ascending value order — the exporter surface.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .flat_map(|b| b.iter().enumerate())
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_floor(i), c))
    }

    /// Iterates non-empty buckets as `(upper_bound_inclusive,
    /// cumulative_count)` pairs — the Prometheus `le` convention. The last
    /// pair's cumulative count equals [`count`](Histogram::count).
    pub fn cumulative_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        let mut cum = 0u64;
        self.buckets
            .iter()
            .flat_map(|b| b.iter().enumerate())
            .filter(|(_, &c)| c > 0)
            .map(move |(i, &c)| {
                cum += c;
                let upper = if i + 1 < BUCKETS {
                    bucket_floor(i + 1) - 1
                } else {
                    u64::MAX
                };
                (upper, cum)
            })
    }
}

impl PartialEq for Histogram {
    fn eq(&self, other: &Self) -> bool {
        if (self.count, self.sum, self.min(), self.max())
            != (other.count, other.sum, other.min(), other.max())
        {
            return false;
        }
        // Compare bucket contents, treating a missing array as all-zero so
        // `preallocated()` == `new()` while both are empty.
        const ZERO: [u64; BUCKETS] = [0; BUCKETS];
        let a = self.buckets.as_deref().unwrap_or(&ZERO);
        let b = other.buckets.as_deref().unwrap_or(&ZERO);
        a == b
    }
}

impl Eq for Histogram {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        for v in 0..16u64 {
            assert_eq!(bucket_of(v), v as usize);
            assert_eq!(bucket_floor(bucket_of(v)), v);
        }
    }

    #[test]
    fn bucket_floor_inverts_bucket_of() {
        for v in [16u64, 17, 31, 32, 100, 1_000, 65_535, 1 << 40, u64::MAX] {
            let idx = bucket_of(v);
            let floor = bucket_floor(idx);
            assert!(floor <= v, "floor {floor} above value {v}");
            assert_eq!(bucket_of(floor), idx, "floor must land in its own bucket");
            // Relative error bound: bucket width is floor / 16.
            assert!((v - floor) as f64 <= floor as f64 / 16.0 + 1.0);
        }
        assert!(bucket_of(u64::MAX) < BUCKETS);
    }

    #[test]
    fn quantiles_on_known_data() {
        let mut h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.sum(), 5050);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 100);
        // p50 = rank 50 → value 50; its bucket [50, 51] floors back to 50.
        assert_eq!(h.quantile(0.5), 50);
        // p95 = rank 95 → value 95 lands in the 4-wide bucket [92, 95].
        assert_eq!(h.quantile(0.95), 92);
        // Exact range: small values come back exactly.
        let mut small = Histogram::new();
        for v in [1u64, 2, 3, 4, 5, 6, 7, 8, 9, 10] {
            small.record(v);
        }
        assert_eq!(small.quantile(0.5), 5);
        assert_eq!(small.quantile(0.95), 10);
        assert_eq!(small.quantile(1.0), 10);
        assert_eq!(small.quantile(0.0), 1, "q=0 clamps to rank 1");
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.99), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.tails(), (0, 0, 0));
        assert_eq!(h.nonzero_buckets().count(), 0);
    }

    #[test]
    fn preallocated_equals_empty() {
        assert_eq!(Histogram::preallocated(), Histogram::new());
        let mut a = Histogram::preallocated();
        let mut b = Histogram::new();
        a.record(7);
        b.record(7);
        assert_eq!(a, b);
        b.record(9);
        assert_ne!(a, b);
    }

    #[test]
    fn merge_is_order_independent() {
        let shards: Vec<Vec<u64>> = vec![
            vec![1, 2, 3, 100, 5_000],
            vec![4, 4, 4, 70_000],
            vec![],
            vec![9, 1 << 33],
        ];
        let hists: Vec<Histogram> = shards
            .iter()
            .map(|vs| {
                let mut h = Histogram::new();
                for &v in vs {
                    h.record(v);
                }
                h
            })
            .collect();
        let mut forward = Histogram::new();
        for h in &hists {
            forward.merge(h);
        }
        let mut backward = Histogram::new();
        for h in hists.iter().rev() {
            backward.merge(h);
        }
        assert_eq!(forward, backward);
        let total: u64 = shards.iter().map(|s| s.len() as u64).sum();
        assert_eq!(forward.count(), total);
        assert_eq!(forward.min(), 1);
        assert_eq!(forward.max(), 1 << 33);
    }

    #[test]
    fn reset_keeps_allocation_and_equals_empty() {
        let mut h = Histogram::new();
        h.record(42);
        h.reset();
        assert_eq!(h, Histogram::new());
        h.record(3);
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn record_n_matches_repeated_record() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record_n(37, 5);
        for _ in 0..5 {
            b.record(37);
        }
        assert_eq!(a, b);
        a.record_n(11, 0);
        assert_eq!(a, b, "n = 0 is a no-op");
    }
}
