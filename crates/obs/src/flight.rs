//! The flight recorder: an epoch-stamped ring buffer of message journeys.
//!
//! When tracing is enabled, every (publication, subscriber) pair gets a
//! *journey*: publish → each relay decision (with the routing mechanism
//! that chose the edge) → deliver / drop / retry / fail. Journeys live in a
//! preallocated ring of fixed-size slots — recording never allocates, old
//! journeys are overwritten in arrival order, and each slot carries a
//! monotonically increasing sequence stamp so a handle into a recycled
//! slot is detected and ignored rather than corrupting a newer journey
//! (the same stamp-validation idea as `PublishScratch`'s epochs).
//!
//! On a delivery failure the recorder can dump the last N journeys —
//! the hop-by-hop story of what the router tried — without having paid
//! for string formatting during the run.

use std::fmt;

/// Maximum events stored inline per journey. Longer journeys set the
/// `truncated` flag and keep their first `MAX_EVENTS` events (the early
/// hops are the ones that explain the routing decision).
pub const MAX_EVENTS: usize = 24;

/// The routing mechanism that selected an edge (DESIGN.md §"publish").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RouteChoice {
    /// Stage-1 flood over subscriber-to-subscriber social links.
    SocialFlood,
    /// Stage-2 multi-source BFS over bucket/long links from the reached set.
    BucketBfs,
    /// Lookahead shortcut: a `L_p` path replaced a longer BFS chain.
    Lookahead,
    /// Direct link from the publisher's connection set.
    Direct,
    /// Greedy ring-distance fallback routing.
    Greedy,
    /// Retransmission wave after a detected loss.
    Retry,
}

impl fmt::Display for RouteChoice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            RouteChoice::SocialFlood => "social-flood",
            RouteChoice::BucketBfs => "bucket-bfs",
            RouteChoice::Lookahead => "lookahead",
            RouteChoice::Direct => "direct",
            RouteChoice::Greedy => "greedy",
            RouteChoice::Retry => "retry",
        })
    }
}

/// One structured trace event inside a journey.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TraceEvent {
    /// Slot padding; never observed through the public iterator.
    #[default]
    Empty,
    /// The publication left the publisher.
    Publish {
        /// Publishing peer.
        publisher: u32,
    },
    /// A relay forwarded the message along a chosen edge.
    Relay {
        /// Sending peer.
        from: u32,
        /// Receiving peer.
        to: u32,
        /// Mechanism that picked this edge.
        choice: RouteChoice,
    },
    /// The subscriber received the message.
    Deliver {
        /// Path length in edges.
        hops: u32,
        /// Delivery latency in virtual milliseconds.
        latency_ms: u32,
    },
    /// A link drop was injected on this edge.
    Drop {
        /// Sending peer.
        from: u32,
        /// Receiving peer.
        to: u32,
        /// Zero-based transmission attempt.
        attempt: u32,
    },
    /// A relay crashed mid-publication.
    Crash {
        /// The crashed peer.
        peer: u32,
    },
    /// A retransmission wave started for this subscriber.
    RetryWave {
        /// One-based retry attempt.
        attempt: u32,
        /// Backoff charged before this wave, in virtual milliseconds.
        backoff_ms: u32,
    },
    /// The router picked a new greedy path around observed-dead peers.
    Reroute {
        /// First relay of the replacement path.
        via: u32,
    },
    /// All retransmission attempts exhausted; the delivery was lost.
    Fail,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            TraceEvent::Empty => write!(f, "(empty)"),
            TraceEvent::Publish { publisher } => write!(f, "publish from {publisher}"),
            TraceEvent::Relay { from, to, choice } => {
                write!(f, "relay {from} -> {to} [{choice}]")
            }
            TraceEvent::Deliver { hops, latency_ms } => {
                write!(f, "deliver after {hops} hops ({latency_ms} vms)")
            }
            TraceEvent::Drop { from, to, attempt } => {
                write!(f, "DROP {from} -> {to} (attempt {attempt})")
            }
            TraceEvent::Crash { peer } => write!(f, "CRASH relay {peer}"),
            TraceEvent::RetryWave {
                attempt,
                backoff_ms,
            } => write!(f, "retry wave {attempt} (+{backoff_ms} vms backoff)"),
            TraceEvent::Reroute { via } => write!(f, "reroute via {via}"),
            TraceEvent::Fail => write!(f, "FAILED: retry budget exhausted"),
        }
    }
}

/// Terminal state of a journey.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum JourneyStatus {
    /// Still being recorded (or the run ended mid-journey).
    #[default]
    InFlight,
    /// The subscriber got the message.
    Delivered,
    /// The delivery was lost after exhausting retries.
    Failed,
}

/// One recorded message journey: fixed-size, `Copy`-free inline storage.
#[derive(Clone, Debug)]
pub struct Journey {
    /// Monotonic arrival stamp (also the slot-recycling guard).
    pub seq: u64,
    /// Publication nonce.
    pub nonce: u64,
    /// Publishing peer.
    pub publisher: u32,
    /// Target subscriber.
    pub subscriber: u32,
    /// Terminal state.
    pub status: JourneyStatus,
    /// True when the journey had more than [`MAX_EVENTS`] events.
    pub truncated: bool,
    events: [TraceEvent; MAX_EVENTS],
    len: u8,
}

impl Default for Journey {
    fn default() -> Self {
        Journey {
            seq: 0,
            nonce: 0,
            publisher: 0,
            subscriber: 0,
            status: JourneyStatus::InFlight,
            truncated: false,
            events: [TraceEvent::Empty; MAX_EVENTS],
            len: 0,
        }
    }
}

impl Journey {
    /// The recorded events, in order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events[..self.len as usize]
    }
}

impl fmt::Display for Journey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "journey #{} nonce={} {} -> {} [{}]{}",
            self.seq,
            self.nonce,
            self.publisher,
            self.subscriber,
            match self.status {
                JourneyStatus::InFlight => "in-flight",
                JourneyStatus::Delivered => "delivered",
                JourneyStatus::Failed => "FAILED",
            },
            if self.truncated { " (truncated)" } else { "" },
        )?;
        for ev in self.events() {
            writeln!(f, "    {ev}")?;
        }
        Ok(())
    }
}

/// Handle to a journey being recorded. Becomes inert (all operations
/// no-ops) if the ring recycles its slot before the journey finishes.
#[derive(Clone, Copy, Debug)]
pub struct JourneyId {
    slot: u32,
    seq: u64,
}

/// The ring buffer of journeys.
#[derive(Clone, Debug)]
pub struct FlightRecorder {
    slots: Vec<Journey>,
    next: usize,
    seq: u64,
}

impl FlightRecorder {
    /// A recorder holding the last `capacity` journeys (minimum 1). All
    /// slots are preallocated here; recording never allocates.
    pub fn with_capacity(capacity: usize) -> Self {
        FlightRecorder {
            slots: vec![Journey::default(); capacity.max(1)],
            next: 0,
            seq: 0,
        }
    }

    /// Number of journeys recorded so far (not capped by capacity).
    pub fn recorded(&self) -> u64 {
        self.seq
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Starts a new journey, recycling the oldest slot when full.
    pub fn begin(&mut self, nonce: u64, publisher: u32, subscriber: u32) -> JourneyId {
        self.seq += 1;
        let slot = self.next;
        self.next = (self.next + 1) % self.slots.len();
        let j = &mut self.slots[slot];
        j.seq = self.seq;
        j.nonce = nonce;
        j.publisher = publisher;
        j.subscriber = subscriber;
        j.status = JourneyStatus::InFlight;
        j.truncated = false;
        j.len = 0;
        JourneyId {
            slot: slot as u32,
            seq: self.seq,
        }
    }

    #[inline]
    fn live(&mut self, id: JourneyId) -> Option<&mut Journey> {
        let j = self.slots.get_mut(id.slot as usize)?;
        (j.seq == id.seq).then_some(j)
    }

    /// Appends an event to the journey; sets `truncated` when the inline
    /// buffer is full. No-op on a recycled handle.
    #[inline]
    pub fn push(&mut self, id: JourneyId, ev: TraceEvent) {
        if let Some(j) = self.live(id) {
            if (j.len as usize) < MAX_EVENTS {
                j.events[j.len as usize] = ev;
                j.len += 1;
            } else {
                j.truncated = true;
            }
        }
    }

    /// Marks the journey's terminal state. No-op on a recycled handle.
    pub fn finish(&mut self, id: JourneyId, status: JourneyStatus) {
        if let Some(j) = self.live(id) {
            j.status = status;
        }
    }

    /// All retained journeys, oldest first.
    pub fn journeys(&self) -> impl Iterator<Item = &Journey> {
        let mut live: Vec<&Journey> = self.slots.iter().filter(|j| j.seq > 0).collect();
        live.sort_by_key(|j| j.seq);
        live.into_iter()
    }

    /// Retained journeys that ended in [`JourneyStatus::Failed`], oldest
    /// first.
    pub fn failed(&self) -> impl Iterator<Item = &Journey> {
        self.journeys()
            .filter(|j| j.status == JourneyStatus::Failed)
    }

    /// Renders up to `max` failed journeys (newest last) into `out` —
    /// the `--trace-failed` dump. Returns how many were written.
    pub fn dump_failed(&self, max: usize, out: &mut String) -> usize {
        use fmt::Write;
        let failed: Vec<&Journey> = self.failed().collect();
        let skip = failed.len().saturating_sub(max);
        let mut written = 0;
        for j in &failed[skip..] {
            let _ = write!(out, "{j}");
            written += 1;
        }
        written
    }

    /// Forgets every retained journey (keeps the allocation).
    pub fn clear(&mut self) {
        for j in &mut self.slots {
            *j = Journey::default();
        }
        self.next = 0;
        self.seq = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_a_full_journey() {
        let mut fr = FlightRecorder::with_capacity(4);
        let id = fr.begin(99, 0, 3);
        fr.push(id, TraceEvent::Publish { publisher: 0 });
        fr.push(
            id,
            TraceEvent::Relay {
                from: 0,
                to: 1,
                choice: RouteChoice::SocialFlood,
            },
        );
        fr.push(
            id,
            TraceEvent::Relay {
                from: 1,
                to: 3,
                choice: RouteChoice::Greedy,
            },
        );
        fr.push(
            id,
            TraceEvent::Deliver {
                hops: 2,
                latency_ms: 81,
            },
        );
        fr.finish(id, JourneyStatus::Delivered);

        let j = fr.journeys().next().unwrap();
        assert_eq!(j.events().len(), 4);
        assert_eq!(j.status, JourneyStatus::Delivered);
        assert!(!j.truncated);
        let text = j.to_string();
        assert!(text.contains("relay 1 -> 3 [greedy]"), "got: {text}");
    }

    #[test]
    fn ring_recycles_and_invalidates_handles() {
        let mut fr = FlightRecorder::with_capacity(2);
        let a = fr.begin(1, 0, 1);
        fr.push(a, TraceEvent::Publish { publisher: 0 });
        let _b = fr.begin(2, 0, 2);
        let _c = fr.begin(3, 0, 3); // recycles a's slot
        fr.push(a, TraceEvent::Fail); // must be ignored
        fr.finish(a, JourneyStatus::Failed); // must be ignored
        let nonces: Vec<u64> = fr.journeys().map(|j| j.nonce).collect();
        assert_eq!(nonces, vec![2, 3]);
        assert!(fr.journeys().all(|j| j.events().is_empty()));
        assert_eq!(fr.recorded(), 3);
    }

    #[test]
    fn truncation_keeps_early_events() {
        let mut fr = FlightRecorder::with_capacity(1);
        let id = fr.begin(7, 0, 1);
        for i in 0..(MAX_EVENTS as u32 + 5) {
            fr.push(
                id,
                TraceEvent::Relay {
                    from: i,
                    to: i + 1,
                    choice: RouteChoice::BucketBfs,
                },
            );
        }
        let j = fr.journeys().next().unwrap();
        assert!(j.truncated);
        assert_eq!(j.events().len(), MAX_EVENTS);
        assert_eq!(
            j.events()[0],
            TraceEvent::Relay {
                from: 0,
                to: 1,
                choice: RouteChoice::BucketBfs
            }
        );
    }

    #[test]
    fn dump_failed_caps_and_orders() {
        let mut fr = FlightRecorder::with_capacity(8);
        for n in 0..5u64 {
            let id = fr.begin(n, 0, n as u32 + 1);
            fr.push(id, TraceEvent::Fail);
            fr.finish(
                id,
                if n % 2 == 0 {
                    JourneyStatus::Failed
                } else {
                    JourneyStatus::Delivered
                },
            );
        }
        let mut out = String::new();
        let written = fr.dump_failed(2, &mut out);
        assert_eq!(written, 2);
        assert!(!out.contains("nonce=0"), "oldest failure trimmed: {out}");
        assert!(out.contains("nonce=2") && out.contains("nonce=4"));
        fr.clear();
        assert_eq!(fr.journeys().count(), 0);
    }
}
