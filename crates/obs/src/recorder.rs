//! The publish-path metrics recorder.
//!
//! One [`PublishRecorder`] bundles the five dissemination metrics the
//! evaluation reports as distributions: hop count, route stretch, retry
//! count, per-peer relay load, and delivery latency (virtual ms). The
//! recorder is designed for the 23-allocs-per-publish budget pinned by the
//! hot-path bench: every array is preallocated (or lazily allocated once,
//! on first use at a given network size) and per-publish state is
//! invalidated by bumping an epoch stamp instead of clearing — the same
//! arena idiom as `select-core`'s `PublishScratch`.

use crate::hist::Histogram;

/// Records dissemination metrics across publishes. Merging two recorders
/// (bucket-wise histogram adds plus element-wise relay-load adds) is
/// order-independent, so sharded per-thread recorders combined at a
/// superstep barrier are bit-identical at any thread count.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PublishRecorder {
    /// Path length (edges) per delivered subscriber.
    pub hops: Histogram,
    /// Extra hops over the 1-hop social ideal per delivery (`hops − 1`):
    /// the overlay's detour cost relative to a direct publisher→subscriber
    /// link, which the social graph would provide if every subscriber were
    /// a friend.
    pub stretch: Histogram,
    /// Retransmission attempts needed per publication (0 = first try).
    pub retries: Histogram,
    /// Delivery latency per subscriber, in virtual milliseconds.
    pub latency_ms: Histogram,
    /// Cumulative transmissions per peer, indexed by peer id.
    relay_load: Vec<u64>,
    /// Per-publish receipt dedup stamps (scratch — excluded from equality
    /// via always comparing equal content after `begin_publish`).
    #[doc(hidden)]
    seen: StampSet,
}

/// Epoch-stamped membership set over peer ids: `begin` is O(1) (epoch
/// bump), membership test and insert are O(1), and a u32 epoch wrap
/// triggers the one full reset per ~4 billion publishes.
#[derive(Clone, Debug, Default)]
struct StampSet {
    stamp: Vec<u32>,
    epoch: u32,
}

impl StampSet {
    fn begin(&mut self, n: usize) {
        if self.stamp.len() < n {
            self.stamp.resize(n, 0);
        }
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.stamp.fill(0);
            self.epoch = 1;
        }
    }

    /// Inserts `id`; returns true if it was not yet a member this epoch.
    #[inline]
    fn insert(&mut self, id: u32) -> bool {
        let slot = &mut self.stamp[id as usize];
        if *slot == self.epoch {
            false
        } else {
            *slot = self.epoch;
            true
        }
    }
}

// Scratch stamps carry no logical state between publishes, so equality and
// hashing ignore them.
impl PartialEq for StampSet {
    fn eq(&self, _other: &Self) -> bool {
        true
    }
}
impl Eq for StampSet {}

impl PublishRecorder {
    /// A recorder with all histograms and the per-peer arrays preallocated
    /// for a network of `n` peers — nothing on the publish path allocates
    /// after this.
    pub fn preallocated(n: usize) -> Self {
        let mut r = PublishRecorder {
            hops: Histogram::preallocated(),
            stretch: Histogram::preallocated(),
            retries: Histogram::preallocated(),
            latency_ms: Histogram::preallocated(),
            relay_load: vec![0; n],
            seen: StampSet::default(),
        };
        r.seen.begin(n);
        r
    }

    /// Starts a new publish: bumps the receipt-dedup epoch and grows the
    /// per-peer arrays if the network grew. O(1) except on growth/wrap.
    pub fn begin_publish(&mut self, n: usize) {
        if self.relay_load.len() < n {
            self.relay_load.resize(n, 0);
        }
        self.seen.begin(n);
    }

    /// Records the transmission `from → to` if `to` has not yet received
    /// this publish (tree paths share prefixes; only the first receipt is
    /// a real send). Returns whether the transmission was counted.
    #[inline]
    pub fn note_transmission(&mut self, from: u32, to: u32) -> bool {
        if self.seen.insert(to) {
            self.relay_load[from as usize] += 1;
            true
        } else {
            false
        }
    }

    /// Records a transmission unconditionally — for fault-path floods and
    /// retransmissions, where every attempt really does cross the wire.
    #[inline]
    pub fn note_raw_transmission(&mut self, from: u32) {
        if (from as usize) < self.relay_load.len() {
            self.relay_load[from as usize] += 1;
        } else {
            self.relay_load.resize(from as usize + 1, 0);
            self.relay_load[from as usize] += 1;
        }
    }

    /// Records one delivered subscriber: path length in edges and delivery
    /// latency in virtual milliseconds. Stretch is derived (`hops − 1`).
    #[inline]
    pub fn note_delivery(&mut self, hops: u64, latency_ms: u64) {
        self.hops.record(hops);
        self.stretch.record(hops.saturating_sub(1));
        self.latency_ms.record(latency_ms);
    }

    /// Records how many retransmission waves one publication needed.
    #[inline]
    pub fn note_retries(&mut self, attempts: u64) {
        self.retries.record(attempts);
    }

    /// Adds `sends` transmissions to `peer`'s relay load in one step — for
    /// runtimes that tally per-peer forwards externally (e.g. from a
    /// routing tree's fan-out) rather than edge by edge.
    pub fn relay_load_add(&mut self, peer: u32, sends: u64) {
        if (peer as usize) >= self.relay_load.len() {
            self.relay_load.resize(peer as usize + 1, 0);
        }
        self.relay_load[peer as usize] += sends;
    }

    /// Cumulative transmissions per peer, indexed by peer id.
    pub fn relay_load(&self) -> &[u64] {
        &self.relay_load
    }

    /// The per-peer relay-load *distribution*: one histogram observation
    /// per peer (peers that never relayed contribute a 0). This is the
    /// Fig. 7-style load view.
    pub fn relay_load_histogram(&self) -> Histogram {
        let mut h = Histogram::new();
        for &load in &self.relay_load {
            h.record(load);
        }
        h
    }

    /// Merges `other` into `self`. Histograms add bucket-wise; relay loads
    /// add element-wise — both commutative, so shard merge order (and
    /// therefore thread count) cannot change the result.
    pub fn merge(&mut self, other: &PublishRecorder) {
        self.hops.merge(&other.hops);
        self.stretch.merge(&other.stretch);
        self.retries.merge(&other.retries);
        self.latency_ms.merge(&other.latency_ms);
        if self.relay_load.len() < other.relay_load.len() {
            self.relay_load.resize(other.relay_load.len(), 0);
        }
        for (d, s) in self.relay_load.iter_mut().zip(other.relay_load.iter()) {
            *d += *s;
        }
    }

    /// Clears every metric, keeping allocations.
    pub fn reset(&mut self) {
        self.hops.reset();
        self.stretch.reset();
        self.retries.reset();
        self.latency_ms.reset();
        self.relay_load.fill(0);
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.hops.count() == 0
            && self.retries.count() == 0
            && self.latency_ms.count() == 0
            && self.relay_load.iter().all(|&l| l == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transmission_dedup_per_publish() {
        let mut r = PublishRecorder::preallocated(8);
        r.begin_publish(8);
        assert!(r.note_transmission(0, 1));
        assert!(!r.note_transmission(0, 1), "second receipt is deduped");
        assert!(!r.note_transmission(2, 1), "even from another parent");
        assert!(r.note_transmission(1, 2));
        assert_eq!(r.relay_load(), &[1, 1, 0, 0, 0, 0, 0, 0]);

        r.begin_publish(8);
        assert!(r.note_transmission(0, 1), "new publish resets the dedup");
        assert_eq!(r.relay_load(), &[2, 1, 0, 0, 0, 0, 0, 0]);
    }

    #[test]
    fn delivery_populates_hops_stretch_latency() {
        let mut r = PublishRecorder::preallocated(4);
        r.begin_publish(4);
        r.note_delivery(1, 40);
        r.note_delivery(3, 120);
        assert_eq!(r.hops.count(), 2);
        assert_eq!(r.hops.max(), 3);
        assert_eq!(r.stretch.min(), 0, "1-hop delivery has zero stretch");
        assert_eq!(r.stretch.max(), 2);
        assert_eq!(r.latency_ms.sum(), 160);
    }

    #[test]
    fn merge_matches_single_recorder() {
        let mut a = PublishRecorder::preallocated(4);
        let mut b = PublishRecorder::preallocated(4);
        let mut whole = PublishRecorder::preallocated(4);
        a.begin_publish(4);
        b.begin_publish(4);
        whole.begin_publish(4);
        a.note_transmission(0, 1);
        whole.note_transmission(0, 1);
        a.note_delivery(2, 80);
        whole.note_delivery(2, 80);
        b.note_transmission(1, 2);
        whole.note_transmission(1, 2);
        b.note_retries(2);
        whole.note_retries(2);

        let mut fwd = PublishRecorder::default();
        fwd.merge(&a);
        fwd.merge(&b);
        let mut rev = PublishRecorder::default();
        rev.merge(&b);
        rev.merge(&a);
        assert_eq!(fwd, rev, "merge is order independent");
        assert_eq!(fwd, whole, "merge equals recording into one");
    }

    #[test]
    fn relay_load_histogram_includes_idle_peers() {
        let mut r = PublishRecorder::preallocated(3);
        r.begin_publish(3);
        r.note_transmission(0, 1);
        r.note_transmission(0, 2);
        let h = r.relay_load_histogram();
        assert_eq!(h.count(), 3, "one observation per peer");
        assert_eq!(h.max(), 2);
        assert_eq!(h.min(), 0);
    }

    #[test]
    fn reset_and_empty() {
        let mut r = PublishRecorder::preallocated(2);
        assert!(r.is_empty());
        r.begin_publish(2);
        r.note_transmission(0, 1);
        r.note_retries(1);
        assert!(!r.is_empty());
        r.reset();
        assert!(r.is_empty());
        assert_eq!(r, PublishRecorder::preallocated(2));
    }

    #[test]
    fn epoch_wrap_resets_stamps() {
        let mut s = StampSet::default();
        s.begin(2);
        assert!(s.insert(0));
        s.epoch = u32::MAX;
        s.stamp[1] = u32::MAX; // looks inserted at the wrapping epoch
        s.begin(2);
        assert_eq!(s.epoch, 1, "wrap lands on a fresh epoch, never 0");
        assert!(s.insert(1), "stale stamp from before the wrap is invalid");
    }
}
