//! # osn-obs — deterministic observability for the SELECT overlay
//!
//! The paper's evaluation (Figs. 5–7) reports *distributions* — hop counts,
//! per-peer relay load, notification latency under churn — which scalar
//! telemetry cannot reproduce. This crate is the workspace's observability
//! subsystem, built under the same invariants as the protocol code it
//! watches:
//!
//! * **Deterministic.** No ambient clocks or RNG anywhere (selint L2 scans
//!   `crates/obs/src/`). Time is the simulation's virtual time: rounds, and
//!   virtual milliseconds from `osn_sim::latency`. Sharded per-thread
//!   recorders merge by commutative bucket addition at the superstep apply
//!   barrier, so every metric is bit-identical at any `--threads` value.
//! * **Low-overhead.** Histograms are fixed-size and preallocated
//!   (HDR-style log buckets), the publish recorder reuses epoch-stamped
//!   arenas (no clearing, no allocation on the hot path), and the flight
//!   recorder writes fixed-size journey slots into a preallocated ring.
//!   Recording disabled is a branch on an `Option`.
//! * **Exportable.** Snapshots render to the Prometheus text format or
//!   JSON (`select … --metrics-out FILE`), and failed message journeys
//!   dump hop-by-hop (`--trace-failed`).
//!
//! Modules:
//! * [`hist`] — log-bucketed [`Histogram`] with p50/p95/p99 and
//!   deterministic merge.
//! * [`recorder`] — [`PublishRecorder`] for the five dissemination metrics.
//! * [`flight`] — [`FlightRecorder`] ring buffer of message journeys.
//! * [`trace`] — cross-peer [`TraceAssembler`]: wire-level span records
//!   drained from transport threads → canonical publish trees with per-hop
//!   latency breakdown.
//! * [`export`] — [`MetricsSnapshot`] → Prometheus text / JSON.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod export;
pub mod flight;
pub mod hist;
pub mod recorder;
pub mod trace;

pub use export::MetricsSnapshot;
pub use flight::{FlightRecorder, Journey, JourneyId, JourneyStatus, RouteChoice, TraceEvent};
pub use hist::Histogram;
pub use recorder::PublishRecorder;
pub use trace::{span_id, SpanRecord, TraceAssembler, TraceLatency};

/// Everything the core publish path can observe, bundled so call sites
/// thread a single `Option<&mut Observer>` through the pipeline. `None`
/// keeps the steady path byte-identical to the un-instrumented build.
#[derive(Debug, Default)]
pub struct Observer {
    /// Dissemination metrics (always on when the observer is installed).
    pub metrics: PublishRecorder,
    /// Per-message journey tracing (opt-in; `None` = zero-cost).
    pub flight: Option<FlightRecorder>,
    /// Distribution of same-source publish batch sizes (one sample per
    /// `publish_batch_*` call), showing how much traversal sharing the
    /// batched routing path actually gets.
    pub batch_sizes: Histogram,
}

impl Observer {
    /// An observer with metrics preallocated for `n` peers and tracing off.
    pub fn for_peers(n: usize) -> Self {
        Observer {
            metrics: PublishRecorder::preallocated(n),
            flight: None,
            batch_sizes: Histogram::new(),
        }
    }

    /// Enables journey tracing with a ring of `capacity` journeys.
    pub fn with_tracing(mut self, capacity: usize) -> Self {
        self.flight = Some(FlightRecorder::with_capacity(capacity));
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observer_builder() {
        let o = Observer::for_peers(16);
        assert!(o.flight.is_none());
        assert!(o.metrics.is_empty());
        let o = Observer::for_peers(16).with_tracing(8);
        assert_eq!(o.flight.unwrap().capacity(), 8);
    }
}
