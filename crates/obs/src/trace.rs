//! Cross-peer trace assembly: Dapper-style span records → publish trees.
//!
//! The transports stamp an optional `TraceContext` (trace id, parent span,
//! hop depth) into publish/ack/probe frames. Each peer thread that first
//! delivers a traced publish records one [`SpanRecord`] into a local
//! buffer; the buffers are drained at shutdown and fed to a
//! [`TraceAssembler`], which regroups them into per-publication trees,
//! checks causal completeness against the delivery set, renders a
//! **canonical** tree (no wall-clock content, so inproc runs are
//! bit-identical at any thread count), and computes per-hop and
//! critical-path latency from the wall-clock stamps.
//!
//! This module performs no I/O and reads no clocks (selint L2 scans
//! `crates/obs/src/`): wall-clock values arrive pre-stamped in the records,
//! measured by the transports against a shared epoch.

use crate::flight::{FlightRecorder, JourneyStatus, RouteChoice, TraceEvent};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One peer's participation in one traced publish journey. Recorded at the
/// moment of first delivery; `Copy` so per-thread buffers stay allocation
/// -light.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// The journey (the transports use the publication id).
    pub trace_id: u64,
    /// This span's id: [`span_id`]`(trace_id, peer)`, never 0.
    pub span_id: u64,
    /// Span id of the frame's sender; 0 = the driver injected it.
    pub parent_span: u64,
    /// The recording peer.
    pub peer: u32,
    /// Hop depth carried by the delivering frame (driver frames are 0).
    pub hop: u8,
    /// Transmission attempt of the delivering frame (0 = original wave).
    pub attempt: u32,
    /// Microseconds since the transport's shared epoch at delivery.
    /// Excluded from canonical renderings; feeds the latency breakdown.
    pub wall_us: u64,
}

/// Deterministic span id for `peer`'s participation in `trace_id`:
/// a splitmix64-style mix, pinned nonzero (0 is the driver-root sentinel).
/// Pure, so every runtime — and every thread — derives the same id for the
/// same (trace, peer) pair without coordination.
pub fn span_id(trace_id: u64, peer: u32) -> u64 {
    let mut z = trace_id.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(
        u64::from(peer)
            .wrapping_add(1)
            .wrapping_mul(0xBF58_476D_1CE4_E5B9),
    );
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    if z == 0 {
        1
    } else {
        z
    }
}

/// Latency breakdown of one assembled trace, derived from the span
/// wall-clock stamps (wall content lives here, never in the canonical
/// tree text).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceLatency {
    /// Spans recorded for this trace.
    pub spans: usize,
    /// Deepest hop observed.
    pub max_hop: u8,
    /// Peers along the slowest root→leaf chain, root first.
    pub critical_path: Vec<u32>,
    /// Per-hop deltas (µs) along the critical path: `per_hop_us[i]` is the
    /// time from `critical_path[i]`'s delivery to `critical_path[i+1]`'s.
    pub per_hop_us: Vec<u64>,
    /// End-to-end µs from the root span's delivery to the slowest leaf.
    pub critical_path_us: u64,
}

/// Regroups drained span buffers into per-publication trees.
#[derive(Clone, Debug, Default)]
pub struct TraceAssembler {
    spans: Vec<SpanRecord>,
}

impl TraceAssembler {
    /// An empty assembler.
    pub fn new() -> Self {
        TraceAssembler::default()
    }

    /// Absorbs one drained buffer of spans (any order, any thread).
    pub fn absorb(&mut self, spans: impl IntoIterator<Item = SpanRecord>) {
        self.spans.extend(spans);
    }

    /// Total spans absorbed so far.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True when nothing has been absorbed.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// The distinct trace ids seen, ascending.
    pub fn trace_ids(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self.spans.iter().map(|s| s.trace_id).collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// This trace's spans in canonical order: (hop, peer, attempt).
    pub fn spans_of(&self, trace_id: u64) -> Vec<&SpanRecord> {
        let mut spans: Vec<&SpanRecord> = self
            .spans
            .iter()
            .filter(|s| s.trace_id == trace_id)
            .collect();
        spans.sort_by_key(|s| (s.hop, s.peer, s.attempt));
        spans
    }

    /// Everything wrong with this trace's causal chain given the delivery
    /// set the transport reported: delivered peers with no span, and spans
    /// whose parent is neither the driver sentinel nor a recorded span.
    /// Empty means the chain is complete root→leaf.
    pub fn chain_gaps(&self, trace_id: u64, delivered: &[u32]) -> Vec<String> {
        let spans = self.spans_of(trace_id);
        let mut gaps = Vec::new();
        for &peer in delivered {
            if !spans.iter().any(|s| s.peer == peer) {
                gaps.push(format!(
                    "trace {trace_id}: delivered peer {peer} has no span"
                ));
            }
        }
        for s in &spans {
            if s.parent_span != 0 && !spans.iter().any(|p| p.span_id == s.parent_span) {
                gaps.push(format!(
                    "trace {trace_id}: span of peer {} (hop {}) has unknown parent {:#x}",
                    s.peer, s.hop, s.parent_span
                ));
            }
        }
        gaps
    }

    /// True when every delivered peer has a span and every span's parent
    /// chain reaches the driver root.
    pub fn chain_complete(&self, trace_id: u64, delivered: &[u32]) -> bool {
        self.chain_gaps(trace_id, delivered).is_empty()
    }

    /// Renders this trace as a canonical indented tree. Children sort by
    /// (peer, attempt); **no wall-clock content**, so two runs that made
    /// identical delivery decisions render byte-identical text regardless
    /// of thread count or scheduling. Spans whose parent was never
    /// recorded are listed under an `orphans:` section rather than lost.
    pub fn canonical_tree(&self, trace_id: u64, out: &mut String) {
        let spans = self.spans_of(trace_id);
        let _ = writeln!(out, "trace {trace_id}: {} spans", spans.len());
        // parent span id -> children, already in canonical order.
        let mut children: BTreeMap<u64, Vec<&SpanRecord>> = BTreeMap::new();
        for s in &spans {
            children.entry(s.parent_span).or_default().push(s);
        }
        let mut emitted = 0usize;
        let mut stack: Vec<(&SpanRecord, usize)> = Vec::new();
        for root in children.get(&0).into_iter().flatten().rev() {
            stack.push((root, 1));
        }
        while let Some((s, depth)) = stack.pop() {
            emitted += 1;
            let _ = writeln!(
                out,
                "{:indent$}peer {} hop {} attempt {}",
                "",
                s.peer,
                s.hop,
                s.attempt,
                indent = depth * 2
            );
            // Guard against a malformed parent cycle exhausting the stack.
            if emitted > spans.len() {
                break;
            }
            for child in children.get(&s.span_id).into_iter().flatten().rev() {
                stack.push((child, depth + 1));
            }
        }
        if emitted < spans.len() {
            let _ = writeln!(out, "  orphans:");
            let reachable = |s: &&SpanRecord| {
                s.parent_span == 0 || spans.iter().any(|p| p.span_id == s.parent_span)
            };
            for s in spans.iter().filter(|s| !reachable(s)) {
                let _ = writeln!(
                    out,
                    "    peer {} hop {} attempt {} parent {:#x}",
                    s.peer, s.hop, s.attempt, s.parent_span
                );
            }
        }
    }

    /// Canonical rendering of every absorbed trace, ascending by trace id.
    pub fn render_all(&self) -> String {
        let mut out = String::new();
        for id in self.trace_ids() {
            self.canonical_tree(id, &mut out);
        }
        out
    }

    /// Latency breakdown of one trace: the slowest root→leaf chain and its
    /// per-hop deltas, computed from the span wall stamps.
    pub fn latency(&self, trace_id: u64) -> TraceLatency {
        let spans = self.spans_of(trace_id);
        let mut lat = TraceLatency {
            spans: spans.len(),
            max_hop: spans.iter().map(|s| s.hop).max().unwrap_or(0),
            ..TraceLatency::default()
        };
        // Slowest span; ties break toward the smaller peer id for
        // determinism under equal (coarse) clock readings.
        let Some(slowest) = spans
            .iter()
            .max_by_key(|s| (s.wall_us, std::cmp::Reverse(s.peer)))
        else {
            return lat;
        };
        // Walk parents back to the driver root.
        let mut chain: Vec<&SpanRecord> = vec![slowest];
        let mut cur = *slowest;
        while cur.parent_span != 0 && chain.len() <= spans.len() {
            match spans.iter().find(|s| s.span_id == cur.parent_span) {
                Some(parent) => {
                    chain.push(parent);
                    cur = *parent;
                }
                None => break, // incomplete chain: report what exists
            }
        }
        chain.reverse();
        lat.critical_path = chain.iter().map(|s| s.peer).collect();
        lat.per_hop_us = chain
            .windows(2)
            .map(|w| w[1].wall_us.saturating_sub(w[0].wall_us))
            .collect();
        lat.critical_path_us = slowest
            .wall_us
            .saturating_sub(chain.first().map_or(0, |r| r.wall_us));
        lat
    }

    /// Replays the assembled traces into a [`FlightRecorder`], one journey
    /// per (publication, delivered subscriber), so wire-level traces reuse
    /// the recorder's dump/inspection machinery. Relay hops with
    /// `attempt > 0` are marked [`RouteChoice::Retry`].
    pub fn replay_into(&self, fr: &mut FlightRecorder) {
        for trace_id in self.trace_ids() {
            let spans = self.spans_of(trace_id);
            let publisher = spans
                .iter()
                .find(|s| s.parent_span == 0 && s.attempt == 0)
                .map_or(0, |s| s.peer);
            let root_wall = spans
                .iter()
                .filter(|s| s.parent_span == 0)
                .map(|s| s.wall_us)
                .min()
                .unwrap_or(0);
            for span in &spans {
                let id = fr.begin(trace_id, publisher, span.peer);
                fr.push(id, TraceEvent::Publish { publisher });
                // Rebuild the path driver→span (parent chain, reversed).
                let mut path: Vec<&SpanRecord> = vec![span];
                let mut cur = **span;
                while cur.parent_span != 0 && path.len() <= spans.len() {
                    match spans.iter().find(|s| s.span_id == cur.parent_span) {
                        Some(parent) => {
                            path.push(parent);
                            cur = **parent;
                        }
                        None => break,
                    }
                }
                path.reverse();
                for w in path.windows(2) {
                    fr.push(
                        id,
                        TraceEvent::Relay {
                            from: w[0].peer,
                            to: w[1].peer,
                            choice: if w[1].attempt > 0 {
                                RouteChoice::Retry
                            } else {
                                RouteChoice::Direct
                            },
                        },
                    );
                }
                let latency_us = span.wall_us.saturating_sub(root_wall);
                fr.push(
                    id,
                    TraceEvent::Deliver {
                        hops: u32::from(span.hop),
                        latency_ms: u32::try_from(latency_us / 1000).unwrap_or(u32::MAX),
                    },
                );
                fr.finish(id, JourneyStatus::Delivered);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(trace: u64, peer: u32, parent: u64, hop: u8, attempt: u32, wall: u64) -> SpanRecord {
        SpanRecord {
            trace_id: trace,
            span_id: span_id(trace, peer),
            parent_span: parent,
            peer,
            hop,
            attempt,
            wall_us: wall,
        }
    }

    /// trace 9: driver → 0 → {1, 2}, 2 → 3; plus a hop-0 retry to peer 4.
    fn sample() -> TraceAssembler {
        let mut asm = TraceAssembler::new();
        let s0 = span_id(9, 0);
        let s2 = span_id(9, 2);
        asm.absorb(vec![
            span(9, 3, s2, 2, 0, 900),
            span(9, 0, 0, 0, 0, 100),
            span(9, 2, s0, 1, 0, 400),
            span(9, 1, s0, 1, 0, 300),
            span(9, 4, 0, 0, 1, 1500),
        ]);
        asm
    }

    #[test]
    fn span_ids_are_nonzero_and_distinct_per_peer() {
        let ids: Vec<u64> = (0..100).map(|p| span_id(7, p)).collect();
        assert!(ids.iter().all(|&i| i != 0));
        let mut dedup = ids.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), ids.len());
        assert_ne!(span_id(7, 3), span_id(8, 3), "trace id participates");
    }

    #[test]
    fn canonical_tree_is_insertion_order_independent() {
        let asm = sample();
        let mut reversed = TraceAssembler::new();
        let mut spans: Vec<SpanRecord> = asm.spans_of(9).into_iter().copied().collect();
        spans.reverse();
        reversed.absorb(spans);
        assert_eq!(asm.render_all(), reversed.render_all());
        let text = asm.render_all();
        assert!(text.contains("trace 9: 5 spans"), "got: {text}");
        assert!(text.contains("  peer 0 hop 0 attempt 0"), "got: {text}");
        assert!(text.contains("    peer 2 hop 1 attempt 0"), "got: {text}");
        assert!(text.contains("      peer 3 hop 2 attempt 0"), "got: {text}");
        assert!(text.contains("  peer 4 hop 0 attempt 1"), "got: {text}");
        assert!(!text.contains("orphans"), "got: {text}");
    }

    #[test]
    fn canonical_tree_excludes_wall_clock_content() {
        let mut jittered = sample();
        for s in &mut jittered.spans {
            s.wall_us = s.wall_us.wrapping_mul(31).wrapping_add(17);
        }
        assert_eq!(sample().render_all(), jittered.render_all());
    }

    #[test]
    fn chain_completeness_detects_gaps() {
        let asm = sample();
        assert!(asm.chain_complete(9, &[0, 1, 2, 3, 4]));
        // A delivered peer without a span is a gap.
        assert!(!asm.chain_complete(9, &[0, 1, 2, 3, 4, 5]));
        // A span whose parent was never recorded is a gap.
        let mut broken = sample();
        broken.absorb(vec![span(9, 6, 0xDEAD, 3, 0, 999)]);
        let gaps = broken.chain_gaps(9, &[0, 1, 2, 3, 4, 6]);
        assert_eq!(gaps.len(), 1, "{gaps:?}");
        assert!(gaps[0].contains("unknown parent"), "{gaps:?}");
        let text = broken.render_all();
        assert!(text.contains("orphans:"), "got: {text}");
    }

    #[test]
    fn latency_walks_the_critical_path() {
        let asm = sample();
        let lat = asm.latency(9);
        assert_eq!(lat.spans, 5);
        assert_eq!(lat.max_hop, 2);
        // Slowest span is the hop-0 retry to peer 4 (wall 1500).
        assert_eq!(lat.critical_path, vec![4]);
        assert_eq!(lat.critical_path_us, 0);
        // Without the retry, the slowest chain is 0 → 2 → 3.
        let mut asm = TraceAssembler::new();
        asm.absorb(
            sample()
                .spans_of(9)
                .into_iter()
                .copied()
                .filter(|s| s.peer != 4),
        );
        let lat = asm.latency(9);
        assert_eq!(lat.critical_path, vec![0, 2, 3]);
        assert_eq!(lat.per_hop_us, vec![300, 500]);
        assert_eq!(lat.critical_path_us, 800);
    }

    #[test]
    fn replay_bridges_spans_into_journeys() {
        let mut fr = FlightRecorder::with_capacity(16);
        sample().replay_into(&mut fr);
        assert_eq!(fr.recorded(), 5, "one journey per span");
        let deepest = fr
            .journeys()
            .find(|j| j.subscriber == 3)
            .expect("peer 3 journey");
        assert_eq!(deepest.publisher, 0);
        assert_eq!(deepest.nonce, 9);
        let text = deepest.to_string();
        assert!(text.contains("relay 0 -> 2 [direct]"), "got: {text}");
        assert!(text.contains("relay 2 -> 3 [direct]"), "got: {text}");
        assert!(text.contains("deliver after 2 hops"), "got: {text}");
        let retried = fr.journeys().find(|j| j.subscriber == 4).unwrap();
        assert_eq!(retried.events().len(), 2, "hop-0 retry: publish+deliver");
    }
}
