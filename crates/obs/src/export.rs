//! Prometheus-text and JSON snapshot exporters.
//!
//! A [`MetricsSnapshot`] is a named bag of histograms and scalar gauges,
//! built once at the end of a run (never on the hot path) and rendered to
//! either the Prometheus text exposition format (`--metrics-out x.prom`)
//! or a JSON document (`--metrics-out x.json`). Rendering is pure string
//! formatting over frozen counters — no clocks, no ambient state — so the
//! same run always exports byte-identical files.

use crate::hist::Histogram;
use std::fmt::Write;

/// A frozen, named view of a run's metrics.
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    /// `(metric_name, histogram)` pairs, rendered in insertion order.
    pub histograms: Vec<(String, Histogram)>,
    /// `(metric_name, value)` scalar gauges, rendered in insertion order.
    pub gauges: Vec<(String, f64)>,
}

impl MetricsSnapshot {
    /// An empty snapshot.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a histogram under `name` (builder style).
    pub fn with_histogram(mut self, name: &str, h: Histogram) -> Self {
        self.histograms.push((sanitize(name), h));
        self
    }

    /// Adds a scalar gauge under `name` (builder style).
    pub fn with_gauge(mut self, name: &str, v: f64) -> Self {
        self.gauges.push((sanitize(name), v));
        self
    }

    /// Renders the snapshot in the Prometheus text exposition format:
    /// each histogram becomes `<name>_bucket{le="…"}` cumulative series
    /// plus `_sum`/`_count`, each gauge a single sample.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, h) in &self.histograms {
            let _ = writeln!(out, "# TYPE {name} histogram");
            for (le, cum) in h.cumulative_buckets() {
                if le == u64::MAX {
                    continue; // folded into +Inf below
                }
                let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cum}");
            }
            let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count());
            let _ = writeln!(out, "{name}_sum {}", h.sum());
            let _ = writeln!(out, "{name}_count {}", h.count());
        }
        for (name, v) in &self.gauges {
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {v}");
        }
        out
    }

    /// Renders the snapshot as a JSON document: one object per histogram
    /// with count/sum/min/max/mean, the p50/p95/p99 tails, and the raw
    /// `[lower_bound, count]` bucket pairs; gauges as a flat object.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"histograms\": {");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            let (p50, p95, p99) = h.tails();
            let _ = write!(
                out,
                "{}\n    \"{name}\": {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \
                 \"mean\": {:.3}, \"p50\": {p50}, \"p95\": {p95}, \"p99\": {p99}, \"buckets\": [",
                if i == 0 { "" } else { "," },
                h.count(),
                h.sum(),
                h.min(),
                h.max(),
                h.mean(),
            );
            for (j, (lo, c)) in h.nonzero_buckets().enumerate() {
                let _ = write!(out, "{}[{lo}, {c}]", if j == 0 { "" } else { ", " });
            }
            out.push_str("]}");
        }
        out.push_str("\n  },\n  \"gauges\": {");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            let _ = write!(
                out,
                "{}\n    \"{name}\": {v}",
                if i == 0 { "" } else { "," }
            );
        }
        out.push_str("\n  }\n}\n");
        out
    }
}

/// Prometheus metric names: `[a-zA-Z_:][a-zA-Z0-9_:]*`. Anything else
/// becomes `_` so caller-supplied names can't produce unparsable output.
fn sanitize(name: &str) -> String {
    let mut s: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if s.is_empty() || s.as_bytes()[0].is_ascii_digit() {
        s.insert(0, '_');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MetricsSnapshot {
        let mut h = Histogram::new();
        for v in [1u64, 2, 2, 3, 40] {
            h.record(v);
        }
        MetricsSnapshot::new()
            .with_histogram("select_hops", h)
            .with_gauge("select_rounds", 17.0)
    }

    #[test]
    fn prometheus_shape() {
        let text = sample().to_prometheus();
        assert!(text.contains("# TYPE select_hops histogram"));
        assert!(text.contains("select_hops_bucket{le=\"1\"} 1"));
        assert!(text.contains("select_hops_bucket{le=\"2\"} 3"));
        assert!(text.contains("select_hops_bucket{le=\"+Inf\"} 5"));
        assert!(text.contains("select_hops_sum 48"));
        assert!(text.contains("select_hops_count 5"));
        assert!(text.contains("# TYPE select_rounds gauge"));
        assert!(text.contains("select_rounds 17"));
    }

    #[test]
    fn cumulative_le_bounds_are_inclusive() {
        let mut h = Histogram::new();
        h.record(16); // first log bucket: [16, 17)
        let pairs: Vec<(u64, u64)> = h.cumulative_buckets().collect();
        assert_eq!(pairs, vec![(16, 1)], "upper bound includes the value");
    }

    #[test]
    fn json_shape() {
        let json = sample().to_json();
        assert!(json.contains("\"select_hops\""));
        assert!(json.contains("\"count\": 5"));
        assert!(json.contains("\"p50\": 2"));
        assert!(json.contains("\"buckets\": [[1, 1], [2, 2], [3, 1], [40, 1]]"));
        assert!(json.contains("\"select_rounds\": 17"));
        // Must parse as JSON by at least being brace-balanced.
        let opens = json.matches(['{', '[']).count();
        let closes = json.matches(['}', ']']).count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn deterministic_rendering() {
        assert_eq!(sample().to_prometheus(), sample().to_prometheus());
        assert_eq!(sample().to_json(), sample().to_json());
    }

    #[test]
    fn name_sanitization() {
        assert_eq!(sanitize("ok_name:x"), "ok_name:x");
        assert_eq!(sanitize("bad name-1"), "bad_name_1");
        assert_eq!(sanitize("9lives"), "_9lives");
        assert_eq!(sanitize(""), "_");
    }
}
