//! # hotpath — marker attribute for allocation-free hot paths
//!
//! `#[hotpath]` expands to the item unchanged; it exists so that `selint`
//! (the workspace determinism lint, `cargo run -p selint`) can find the
//! functions that make up the steady-state publish/route pipeline and deny
//! allocation-prone calls (`collect`, `to_vec`, `clone`, `format!`) inside
//! them. The attribute is deliberately dependency-free: it uses only the
//! built-in `proc_macro` crate so the fully offline workspace needs no
//! `syn`/`quote`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use proc_macro::TokenStream;

/// Marks a function as part of the allocation-free hot path.
///
/// Semantically a no-op; `selint` rule L3 (`hotpath-alloc`) bans
/// allocation-prone calls inside the annotated function's body. Waive a
/// deliberate allocation with `// selint: allow(hotpath-alloc, reason)`.
#[proc_macro_attribute]
pub fn hotpath(attr: TokenStream, item: TokenStream) -> TokenStream {
    assert!(
        attr.is_empty(),
        "#[hotpath] takes no arguments; found: {attr}"
    );
    item
}
