//! Property tests for the wire codec: round-trips and total decoding.
//!
//! The codec's contract is that `decode(encode(m)) == m` for every message
//! and that *no* byte sequence — truncated, bit-flipped, or pure garbage —
//! can make the decoder panic or allocate unboundedly. The unit tests in
//! `codec.rs` pin the byte layout; these properties sweep the input space.

use bytes::Bytes;
use osn_net::codec::{decode, encode, read_frame};
use osn_overlay::RingId;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use select_core::wire::{TraceContext, WireMsg};
use std::sync::Arc;

/// Trace context present on odd seeds, absent on even ones — so every
/// property sweeps frames with and without the optional v2 field.
fn arb_trace(seed: u64) -> Option<TraceContext> {
    (seed % 2 == 1).then(|| TraceContext {
        trace_id: seed.rotate_left(17),
        parent_span: if seed % 4 == 1 {
            0 // the driver-root sentinel must round-trip too
        } else {
            seed.rotate_right(9)
        },
        hop: (seed % 7) as u8,
    })
}

/// Deterministically builds an arbitrary message of the given shape from a
/// seed: every variant, with field sizes swept from empty to paper-scale.
fn arb_msg(tag: u8, seed: u64) -> WireMsg {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ids = |n: usize| -> Vec<u32> { (0..n).map(|_| rng.gen::<u32>()).collect() };
    match tag {
        1 => WireMsg::Join { peer: seed as u32 },
        2 => {
            let nn = (seed % 40) as usize;
            let nl = (seed % 17) as usize;
            WireMsg::ExchangeRt {
                from: seed as u32,
                position: RingId(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                neighbourhood: ids(nn),
                links: ids(nl),
            }
        }
        3 => WireMsg::ExchangeReply {
            from: seed as u32,
            position: RingId(!seed),
            n_mutual: (seed >> 32) as u32,
            links: ids((seed % 23) as usize),
        },
        4 => WireMsg::Probe {
            from: seed as u32,
            nonce: seed,
            trace: arb_trace(seed),
        },
        5 => WireMsg::ProbeReply {
            from: seed as u32,
            nonce: seed,
            online: seed.is_multiple_of(2),
        },
        6 => {
            let n_relays = (seed % 12) as usize;
            let mut children = Vec::with_capacity(n_relays);
            for i in 0..n_relays {
                let kids = ids((seed as usize + i) % 6);
                children.push((i as u32 * 3, kids)); // ascending peers
            }
            let payload_len = (seed % 5000) as usize;
            WireMsg::Publish {
                pub_id: seed,
                attempt: (seed % 5) as u32,
                publisher: (seed % 100) as u32,
                children: Arc::new(children),
                payload: Bytes::from(vec![(seed % 251) as u8; payload_len]),
                trace: arb_trace(seed),
            }
        }
        7 => WireMsg::Ack {
            pub_id: seed,
            peer: seed as u32,
            bytes: seed >> 3,
            trace: arb_trace(seed),
        },
        _ => WireMsg::Shutdown,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every message survives an encode/decode round-trip bit-identically,
    /// and the decoder consumes exactly the frame it was given.
    #[test]
    fn round_trip_is_identity(tag in 1u8..=8, seed in any::<u64>()) {
        let msg = arb_msg(tag, seed);
        let frame = encode(&msg).map_err(|e| TestCaseError(format!("{e}")))?;
        let (back, used) = decode(&frame).map_err(|e| TestCaseError(format!("{e}")))?;
        prop_assert_eq!(used, frame.len());
        prop_assert_eq!(back, msg);
    }

    /// Every strict prefix of a valid frame is rejected as an error — the
    /// decoder neither panics nor invents a message from partial bytes.
    #[test]
    fn any_truncation_errors(tag in 1u8..=8, seed in any::<u64>(), frac in 0.0f64..1.0) {
        let frame = encode(&arb_msg(tag, seed)).map_err(|e| TestCaseError(format!("{e}")))?;
        let cut = ((frame.len() as f64) * frac) as usize; // < len since frac < 1
        prop_assert!(decode(&frame[..cut]).is_err());
    }

    /// Arbitrary garbage never panics the buffer decoder or the stream
    /// reader; it either errors or (vanishingly unlikely) decodes.
    #[test]
    fn garbage_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = decode(&bytes);
        let mut r = &bytes[..];
        let _ = read_frame(&mut r);
    }

    /// Version negotiation: any trace-free frame rewritten as wire v1 —
    /// version byte 1, no trailing trace presence byte — decodes to the
    /// same message under the v2 codec. Old peers' frames stay readable.
    #[test]
    fn v1_downgrade_decodes_identically(tag in 1u8..=8, seed in any::<u64>()) {
        let msg = arb_msg(tag, seed & !1); // even seed → no trace context
        let mut frame = encode(&msg).map_err(|e| TestCaseError(format!("{e}")))?;
        frame[6] = 1; // claim wire version 1
        if matches!(tag, 4 | 6 | 7) {
            // v1 bodies predate the trailing trace presence byte.
            prop_assert_eq!(frame.pop(), Some(0));
            let len = u32::from_le_bytes([frame[0], frame[1], frame[2], frame[3]]) - 1;
            frame[..4].copy_from_slice(&len.to_le_bytes());
        }
        let (back, used) = decode(&frame).map_err(|e| TestCaseError(format!("{e}")))?;
        prop_assert_eq!(used, frame.len());
        prop_assert_eq!(back, msg);
    }

    /// A single flipped byte in a valid frame never panics; if the frame
    /// still decodes (a payload-byte flip), the result re-encodes cleanly.
    #[test]
    fn bit_flips_never_panic(tag in 1u8..=8, seed in any::<u64>(), at in any::<u64>(), bit in 0u8..8) {
        let mut frame = encode(&arb_msg(tag, seed)).map_err(|e| TestCaseError(format!("{e}")))?;
        let idx = (at % frame.len() as u64) as usize;
        frame[idx] ^= 1 << bit;
        if let Ok((msg, _)) = decode(&frame) {
            prop_assert!(encode(&msg).is_ok());
        }
    }
}
