//! Concurrent actor runtime: one thread per peer, channels as links.
//!
//! This is the in-process stand-in for the paper's WebRTC browser peers:
//! every peer runs on its own OS thread, owns a receiver, and forwards real
//! `bytes::Bytes` payloads to its dissemination-tree children. Payload
//! buffers are reference-counted (`Bytes::clone` is O(1)), mirroring how a
//! real node relays a buffer it holds.
//!
//! Actors speak [`WireMsg`] — the same vocabulary the codec frames onto TCP
//! in [`crate::socket`] — over crossbeam channels, and the publish path is
//! the generic [`crate::transport::publish_over`] driver. This runtime is
//! the **reference transport**: deterministic, fast, and the baseline the
//! socket transport's conformance test replays against.
//!
//! The runtime checks *behaviour* (every subscriber receives exactly one
//! copy, forwarding follows the tree, concurrent publications don't
//! interfere); timing fidelity is the job of [`crate::timing`].

use crate::codec::encoded_frame_len;
use crate::stats::TransportStats;
use crate::transport::{publish_over, PeerAddr, Transport};
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};
use osn_graph::ids::to_u32;
use osn_obs::trace::{span_id, SpanRecord};
use osn_sim::{FaultPlan, FrameFate};
use select_core::pubsub::RoutingTree;
use select_core::wire::{children_for, TraceContext, WireMsg};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

pub use crate::transport::PublishResult;

/// A network of peer actors.
pub struct ThreadedNetwork {
    senders: Vec<Sender<WireMsg>>,
    handles: Vec<JoinHandle<()>>,
    /// Driver-bound event frames: acks, probe replies (joins are drained
    /// by the spawn handshake).
    events: Receiver<WireMsg>,
    next_pub_id: u64,
    /// Retransmission waves `publish` may use after the first ack window.
    retry_max: u32,
    drops: Arc<AtomicU64>,
    /// Wire telemetry, shared with every actor thread. Channels are
    /// lossless and actors drain their queues before honouring Shutdown,
    /// so for runs that quiesce before shutdown the counts are a pure
    /// function of the plan — deterministic and thread-invariant.
    stats: Arc<TransportStats>,
    /// Whether publish frames are stamped with a root
    /// [`TraceContext`](select_core::wire::TraceContext).
    tracing: bool,
    /// Origin for span wall stamps (driver ack-processing times).
    epoch: Instant,
    /// Driver-materialized spans: one per traced ack the driver received.
    /// Actors echo the delivery context in their acks instead of keeping
    /// per-actor buffers — a per-delivery write into a cold per-thread
    /// buffer costs ~10% of the publish path on a busy single-core box,
    /// while this vec stays cache-hot under the driver's ack loop.
    spans: Vec<SpanRecord>,
}

impl ThreadedNetwork {
    /// Spawns `n` peer actors on a fault-free network.
    pub fn spawn(n: usize) -> Self {
        Self::spawn_with_faults(n, FaultPlan::disabled(), 0)
    }

    /// Spawns `n` peer actors whose forwards run through `plan`: before
    /// each child send the actor draws the plan's frame fate (keyed by
    /// publication, attempt and directed link — deterministic and
    /// replayable): drops are discarded and counted, delay jitter sleeps
    /// before the send (virtual ms compressed to wall µs). `retry_max`
    /// bounds the publisher-side ack-driven retransmission waves of
    /// [`ThreadedNetwork::publish`].
    ///
    /// Every actor announces itself with a [`WireMsg::Join`] frame; spawn
    /// returns once all `n` joins arrived, so the network is fully up
    /// before the first publication.
    pub fn spawn_with_faults(n: usize, plan: FaultPlan, retry_max: u32) -> Self {
        let (event_tx, events) = unbounded::<WireMsg>();
        let drops = Arc::new(AtomicU64::new(0));
        let stats = Arc::new(TransportStats::new());
        // Epoch for span wall stamps: the driver stamps each traced ack as
        // it processes it, so one origin covers every span.
        let epoch = Instant::now();
        let mut senders = Vec::with_capacity(n);
        let mut receivers: Vec<Receiver<WireMsg>> = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(rx);
        }
        let mut handles = Vec::with_capacity(n);
        for (id, rx) in receivers.into_iter().enumerate() {
            let peers = senders.clone();
            let event_tx = event_tx.clone();
            let drops = drops.clone();
            let stats = stats.clone();
            handles.push(std::thread::spawn(move || {
                actor_loop(
                    to_u32(id, "peer id"),
                    rx,
                    peers,
                    event_tx,
                    plan,
                    drops,
                    stats,
                )
            }));
        }
        // Readiness handshake: drain one Join per actor so no event frame
        // from a later publication can race ahead of a still-starting peer.
        let mut joined = 0;
        while joined < n {
            match events.recv_timeout(Duration::from_secs(10)) {
                Ok(WireMsg::Join { .. }) => joined += 1,
                Ok(_) => {}      // impossible before any publication; ignore
                Err(_) => break, // a peer thread died; publish will time out
            }
        }
        ThreadedNetwork {
            senders,
            handles,
            events,
            next_pub_id: 1,
            retry_max,
            drops,
            stats,
            tracing: false,
            epoch,
            spans: Vec::new(),
        }
    }

    /// Number of peers.
    pub fn len(&self) -> usize {
        self.senders.len()
    }

    /// True if no peers were spawned.
    pub fn is_empty(&self) -> bool {
        self.senders.is_empty()
    }

    /// Publishes `payload` along `tree`, blocking until every subscriber in
    /// the tree received it (or `timeout` elapsed).
    ///
    /// With a retry budget (see [`ThreadedNetwork::spawn_with_faults`]) the
    /// timeout is split into `retry_max + 1` ack windows: subscribers still
    /// unacked when a window closes are retransmitted to directly, with a
    /// fresh attempt number so the fault plan redraws its drop decisions.
    /// Per-actor dedup keeps redundant copies from double-delivering. The
    /// loop itself is the transport-generic
    /// [`crate::transport::publish_over`].
    pub fn publish(
        &mut self,
        tree: &RoutingTree,
        payload: Bytes,
        timeout: Duration,
    ) -> PublishResult {
        let pub_id = self.next_pub_id;
        self.next_pub_id += 1;
        let retry_max = self.retry_max;
        publish_over(self, tree, payload, timeout, retry_max, pub_id)
    }

    /// Probes `peer` for liveness over the wire vocabulary: injects a
    /// [`WireMsg::Probe`] and waits up to `timeout` for the matching
    /// [`WireMsg::ProbeReply`]. Returns the reply's `online` flag, or
    /// `None` on timeout / unknown peer.
    pub fn probe(&mut self, peer: u32, nonce: u64, timeout: Duration) -> Option<bool> {
        if !self.send_to(
            peer,
            WireMsg::Probe {
                from: u32::MAX,
                nonce,
                trace: None,
            },
        ) {
            return None;
        }
        let deadline = std::time::Instant::now() + timeout;
        loop {
            let remaining = deadline.saturating_duration_since(std::time::Instant::now());
            match self.recv_event(remaining) {
                Some(WireMsg::ProbeReply {
                    from,
                    nonce: echoed,
                    online,
                }) if from == peer && echoed == nonce => return Some(online),
                Some(_) => {} // stale ack from an earlier publication
                None => return None,
            }
        }
    }

    /// Stops all actors and joins their threads. Idempotent: calling it
    /// again (or dropping the network afterwards) is a no-op.
    pub fn shutdown(&mut self) {
        if self.handles.is_empty() {
            return;
        }
        for tx in &self.senders {
            if tx.send(WireMsg::Shutdown).is_ok() {
                self.stats
                    .record_tx(8, encoded_frame_len(&WireMsg::Shutdown));
            }
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for ThreadedNetwork {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl Transport for ThreadedNetwork {
    fn len(&self) -> usize {
        ThreadedNetwork::len(self)
    }

    fn send_to(&mut self, to: u32, msg: WireMsg) -> bool {
        match self.senders.get(to as usize) {
            Some(tx) => {
                let tag = msg.tag();
                let bytes = encoded_frame_len(&msg);
                let ok = tx.send(msg).is_ok();
                if ok {
                    self.stats.record_tx(tag, bytes);
                }
                ok
            }
            None => false,
        }
    }

    fn recv_event(&mut self, timeout: Duration) -> Option<WireMsg> {
        let msg = self.events.recv_timeout(timeout).ok()?;
        // Driver-side span materialization: each traced ack echoes the
        // context its delivery happened under (parent = forwarder's span,
        // hop = tree depth), and the span id is a pure function of
        // (trace, peer) — so the driver can build the span record without
        // the actors buffering anything. Wall stamps are driver
        // ack-processing times against one epoch; the events channel
        // preserves causal order (a peer acks before it forwards), so
        // stamps stay monotone along every chain. The delivering attempt
        // is not in the ack, so driver-built spans always say attempt 0;
        // the socket transport's peer-recorded spans keep real attempts.
        if let WireMsg::Ack {
            peer,
            trace: Some(ctx),
            ..
        } = &msg
        {
            self.spans.push(SpanRecord {
                trace_id: ctx.trace_id,
                span_id: span_id(ctx.trace_id, *peer),
                parent_span: ctx.parent_span,
                peer: *peer,
                hop: ctx.hop,
                attempt: 0,
                wall_us: self.epoch.elapsed().as_micros() as u64,
            });
        }
        Some(msg)
    }

    fn drops_injected(&self) -> u64 {
        self.drops.load(Ordering::Relaxed)
    }

    fn peer_addr(&self, peer: u32) -> Option<PeerAddr> {
        ((peer as usize) < self.senders.len()).then_some(PeerAddr::InProc(peer))
    }

    fn shutdown(&mut self) {
        ThreadedNetwork::shutdown(self);
    }

    fn stats(&self) -> &TransportStats {
        &self.stats
    }

    fn set_tracing(&mut self, on: bool) {
        self.tracing = on;
    }

    fn tracing(&self) -> bool {
        self.tracing
    }

    fn drain_spans(&mut self) -> Vec<SpanRecord> {
        std::mem::take(&mut self.spans)
    }
}

/// Sends a driver-bound event frame, counting both tx (the actor) and rx
/// (the driver) here: the event channel is lossless and in-process, so
/// counting at the send site keeps the totals a pure function of the plan
/// even when the driver's ack loop returns before draining every event.
fn send_event(events: &Sender<WireMsg>, stats: &TransportStats, msg: WireMsg) {
    let tag = msg.tag();
    let bytes = encoded_frame_len(&msg);
    if events.send(msg).is_ok() {
        stats.record_tx(tag, bytes);
        stats.record_rx(tag, bytes);
    }
}

fn actor_loop(
    id: u32,
    rx: Receiver<WireMsg>,
    peers: Vec<Sender<WireMsg>>,
    events: Sender<WireMsg>,
    plan: FaultPlan,
    drops: Arc<AtomicU64>,
    stats: Arc<TransportStats>,
) {
    send_event(&events, &stats, WireMsg::Join { peer: id });
    // Each actor remembers publications it already handled so duplicate
    // forwards (diamond trees, retransmissions) deliver once.
    let mut seen: std::collections::HashSet<u64> = std::collections::HashSet::new();
    while let Ok(msg) = rx.recv() {
        stats.record_rx(msg.tag(), encoded_frame_len(&msg));
        match msg {
            WireMsg::Publish {
                pub_id,
                attempt,
                publisher,
                children,
                payload,
                trace,
            } => {
                if !seen.insert(pub_id) {
                    continue;
                }
                // First delivery of a traced publication: echo the
                // delivery context verbatim in the ack (the driver
                // materializes the span from it) and stamp forwards with
                // this peer's own span as their parent.
                let fwd_trace: Option<TraceContext> =
                    trace.map(|ctx| ctx.child_of(span_id(ctx.trace_id, id)));
                send_event(
                    &events,
                    &stats,
                    WireMsg::Ack {
                        pub_id,
                        peer: id,
                        bytes: payload.len() as u64,
                        trace,
                    },
                );
                if let Some(kids) = children_for(&children, id) {
                    for &c in kids {
                        match plan.frame_fate(pub_id, attempt, id, c) {
                            FrameFate::Drop => {
                                drops.fetch_add(1, Ordering::Relaxed);
                            }
                            FrameFate::Deliver { delay_ms } => {
                                // Delay jitter: virtual ms compressed to
                                // wall µs so tests stay fast while ordering
                                // pressure is real.
                                if delay_ms > 0.0 {
                                    std::thread::sleep(Duration::from_micros(
                                        delay_ms.ceil() as u64
                                    ));
                                }
                                let Some(tx) = peers.get(c as usize) else {
                                    continue; // malformed tree edge: no such peer
                                };
                                let fwd = WireMsg::Publish {
                                    pub_id,
                                    attempt,
                                    publisher,
                                    children: children.clone(),
                                    payload: payload.clone(),
                                    trace: fwd_trace,
                                };
                                let bytes = encoded_frame_len(&fwd);
                                if tx.send(fwd).is_ok() {
                                    stats.record_tx(6, bytes);
                                }
                            }
                        }
                    }
                }
            }
            WireMsg::Probe {
                from: _,
                nonce,
                trace: _,
            } => {
                send_event(
                    &events,
                    &stats,
                    WireMsg::ProbeReply {
                        from: id,
                        nonce,
                        online: true,
                    },
                );
            }
            WireMsg::Shutdown => break,
            // Gossip exchange frames route through the superstep engine,
            // and ack/join frames are driver-bound: an actor receiving one
            // ignores it rather than crashing the network. The list is
            // spelled out (no `_`) so a new wire tag fails to compile until
            // this runtime decides what to do with it.
            WireMsg::ExchangeRt { .. }
            | WireMsg::ExchangeReply { .. }
            | WireMsg::Join { .. }
            | WireMsg::Ack { .. }
            | WireMsg::ProbeReply { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn tree(publisher: u32, paths: Vec<Vec<u32>>) -> RoutingTree {
        RoutingTree::from_paths(publisher, paths)
    }

    #[test]
    fn payload_reaches_every_tree_node() {
        let mut net = ThreadedNetwork::spawn(6);
        let t = tree(0, vec![vec![0, 1, 2], vec![0, 3], vec![0, 1, 4]]);
        let payload = Bytes::from(vec![7u8; 1024]);
        let r = net.publish(&t, payload, Duration::from_secs(5));
        let got: HashSet<u32> = r.delivered_to.clone();
        assert_eq!(got, HashSet::from([1, 2, 3, 4]));
        assert_eq!(r.bytes_received, 4 * 1024);
        net.shutdown();
    }

    #[test]
    fn publisher_delivery_excluded() {
        let mut net = ThreadedNetwork::spawn(3);
        let t = tree(0, vec![vec![0, 1]]);
        let r = net.publish(&t, Bytes::from_static(b"x"), Duration::from_secs(5));
        assert!(!r.delivered_to.contains(&0));
        net.shutdown();
    }

    #[test]
    fn sequential_publications_do_not_interfere() {
        let mut net = ThreadedNetwork::spawn(4);
        let t1 = tree(0, vec![vec![0, 1], vec![0, 2]]);
        let t2 = tree(3, vec![vec![3, 2]]);
        let r1 = net.publish(&t1, Bytes::from_static(b"aa"), Duration::from_secs(5));
        let r2 = net.publish(&t2, Bytes::from_static(b"bbb"), Duration::from_secs(5));
        assert_eq!(r1.delivered_to, HashSet::from([1, 2]));
        assert_eq!(r2.delivered_to, HashSet::from([2]));
        assert_eq!(r2.bytes_received, 3);
        net.shutdown();
    }

    #[test]
    fn payload_size_of_paper_scale_works() {
        // The paper's 1.2 MB payload through a small chain.
        let mut net = ThreadedNetwork::spawn(3);
        let t = tree(0, vec![vec![0, 1, 2]]);
        let payload = Bytes::from(vec![0u8; 1_200_000]);
        let r = net.publish(&t, payload, Duration::from_secs(10));
        assert_eq!(r.delivered_to.len(), 2);
        assert_eq!(r.bytes_received, 2 * 1_200_000);
        net.shutdown();
    }

    #[test]
    fn empty_tree_returns_immediately() {
        let mut net = ThreadedNetwork::spawn(2);
        let t = tree(0, vec![]);
        let r = net.publish(&t, Bytes::from_static(b"y"), Duration::from_millis(200));
        assert!(r.delivered_to.is_empty());
        net.shutdown();
    }

    #[test]
    fn fault_free_spawn_reports_zero_faults() {
        let mut net = ThreadedNetwork::spawn(4);
        let t = tree(0, vec![vec![0, 1, 2], vec![0, 3]]);
        let r = net.publish(&t, Bytes::from_static(b"z"), Duration::from_secs(5));
        assert_eq!(r.delivered_to, HashSet::from([1, 2, 3]));
        assert_eq!(r.drops_injected, 0);
        assert_eq!(r.retries, 0);
        net.shutdown();
    }

    #[test]
    fn fire_and_forget_drops_match_the_plan() {
        // Star tree 0 -> {1..=8}; no retries, so delivery is exactly the
        // set of children whose (pub 1, attempt 0) edge survives the plan.
        let plan = FaultPlan::seeded(42).with_drop_prob(0.4);
        let expected: HashSet<u32> = (1..=8u32).filter(|&c| !plan.drops(1, 0, 0, c)).collect();
        let dropped = 8 - expected.len() as u64;
        assert!(
            !expected.is_empty() && dropped > 0,
            "seed 42 should mix outcomes (expected {expected:?})"
        );
        let mut net = ThreadedNetwork::spawn_with_faults(9, plan, 0);
        let paths: Vec<Vec<u32>> = (1..=8u32).map(|c| vec![0, c]).collect();
        let t = tree(0, paths);
        let r = net.publish(&t, Bytes::from_static(b"d"), Duration::from_millis(800));
        assert_eq!(r.delivered_to, expected);
        assert_eq!(r.drops_injected, dropped);
        assert_eq!(r.retries, 0);
        net.shutdown();
    }

    #[test]
    fn retries_recover_dropped_subscribers() {
        // Same lossy star, but with a retry budget: retransmissions go
        // straight to unacked peers, so everyone is reached.
        let plan = FaultPlan::seeded(42).with_drop_prob(0.4);
        let mut net = ThreadedNetwork::spawn_with_faults(9, plan, 3);
        let paths: Vec<Vec<u32>> = (1..=8u32).map(|c| vec![0, c]).collect();
        let t = tree(0, paths);
        let r = net.publish(&t, Bytes::from_static(b"r"), Duration::from_secs(4));
        assert_eq!(r.delivered_to.len(), 8, "retries should reach all peers");
        assert!(r.retries > 0, "the lossy plan must have forced retries");
        assert!(r.drops_injected > 0);
        net.shutdown();
    }

    #[test]
    fn record_into_populates_hops_and_relay_load() {
        let mut net = ThreadedNetwork::spawn(6);
        let t = tree(0, vec![vec![0, 1, 2], vec![0, 3], vec![0, 1, 4]]);
        let r = net.publish(&t, Bytes::from_static(b"m"), Duration::from_secs(5));
        net.shutdown();
        let mut rec = osn_obs::PublishRecorder::preallocated(6);
        r.record_into(&t, &mut rec);
        assert_eq!(rec.hops.count(), 3, "one hop sample per delivered path");
        assert_eq!(rec.hops.max(), 2);
        assert_eq!(rec.retries.count(), 1);
        // Peer 0 fans out to {1, 3} (peer 1 deduped), peer 1 to {2, 4}.
        assert_eq!(rec.relay_load()[0], 2);
        assert_eq!(rec.relay_load()[1], 2);
    }

    #[test]
    fn publisher_in_child_list_does_not_burn_ack_windows() {
        // A path that revisits the publisher puts it into a child list, so
        // it lands in the expectation set unless filtered. Before the fix
        // the ack loop could never satisfy `delivered_to.len() >=
        // expect.len()` (the publisher's local delivery is excluded) and
        // burned the entire timeout across every retry window.
        let mut net = ThreadedNetwork::spawn_with_faults(3, FaultPlan::disabled(), 3);
        let t = tree(0, vec![vec![0, 1, 0], vec![0, 2]]);
        let start = std::time::Instant::now();
        let r = net.publish(&t, Bytes::from_static(b"p"), Duration::from_secs(8));
        let elapsed = start.elapsed();
        assert_eq!(r.delivered_to, HashSet::from([1, 2]));
        assert_eq!(r.retries, 0, "fault-free publish must not retransmit");
        assert!(
            elapsed < Duration::from_secs(4),
            "ack loop burned the timeout ({elapsed:?}) waiting on the publisher's own ack"
        );
        net.shutdown();
    }

    #[test]
    fn tiny_timeout_with_large_retry_budget_still_waits_for_acks() {
        // timeout (2 ms) < retry_max + 1 (101) used to yield zero-length
        // ack windows: recv_timeout broke instantly and 100 retransmission
        // waves fired back-to-back. The floored window gives the first
        // wave time to be acked, so a fault-free star needs no retries.
        let mut net = ThreadedNetwork::spawn_with_faults(5, FaultPlan::disabled(), 100);
        let paths: Vec<Vec<u32>> = (1..=4u32).map(|c| vec![0, c]).collect();
        let t = tree(0, paths);
        let r = net.publish(&t, Bytes::from_static(b"w"), Duration::from_millis(2));
        assert_eq!(r.delivered_to, HashSet::from([1, 2, 3, 4]));
        assert_eq!(r.retries, 0, "floored ack window must absorb the acks");
        net.shutdown();
    }

    #[test]
    fn delay_jitter_does_not_lose_messages() {
        let plan = FaultPlan::seeded(7).with_max_delay_ms(30.0);
        let mut net = ThreadedNetwork::spawn_with_faults(5, plan, 0);
        let t = tree(0, vec![vec![0, 1, 2], vec![0, 3, 4]]);
        let r = net.publish(&t, Bytes::from_static(b"j"), Duration::from_secs(5));
        assert_eq!(r.delivered_to, HashSet::from([1, 2, 3, 4]));
        assert_eq!(r.drops_injected, 0);
        net.shutdown();
    }

    #[test]
    fn shutdown_is_idempotent_and_drop_is_safe() {
        let mut net = ThreadedNetwork::spawn(3);
        let t = tree(0, vec![vec![0, 1]]);
        let r = net.publish(&t, Bytes::from_static(b"s"), Duration::from_secs(5));
        assert_eq!(r.delivered_to, HashSet::from([1]));
        net.shutdown();
        net.shutdown(); // second call must be a no-op
        drop(net); // and the Drop guard must not double-join
        let abandoned = ThreadedNetwork::spawn(2);
        drop(abandoned); // never-shut-down network joins cleanly via Drop
    }

    #[test]
    fn probe_round_trips_over_the_wire_vocabulary() {
        let mut net = ThreadedNetwork::spawn(3);
        assert_eq!(net.probe(2, 77, Duration::from_secs(5)), Some(true));
        assert_eq!(net.probe(9, 78, Duration::from_millis(50)), None);
        net.shutdown();
    }

    #[test]
    fn transport_send_and_events_cover_the_driver_surface() {
        let mut net = ThreadedNetwork::spawn(2);
        assert_eq!(Transport::len(&net), 2);
        assert_eq!(net.peer_addr(1), Some(PeerAddr::InProc(1)));
        assert_eq!(net.peer_addr(2), None);
        assert!(!net.send_to(7, WireMsg::Shutdown));
        net.shutdown();
    }

    #[test]
    fn stats_count_every_frame_per_tag() {
        // Fault-free star 0 -> {1, 2, 3}: every count below is a pure
        // function of the tree, so this doubles as the determinism pin.
        let mut net = ThreadedNetwork::spawn(4);
        let paths: Vec<Vec<u32>> = (1..=3u32).map(|c| vec![0, c]).collect();
        let t = tree(0, paths);
        let r = net.publish(&t, Bytes::from_static(b"s"), Duration::from_secs(5));
        assert_eq!(r.delivered_to.len(), 3);
        net.shutdown();
        let snap = net.stats().snapshot();
        assert_eq!(snap.frames_tx[1], 4, "one join per actor");
        assert_eq!(snap.frames_rx[1], 4);
        // Publish: 1 driver injection + 3 forwards from peer 0.
        assert_eq!(snap.frames_tx[6], 4);
        assert_eq!(snap.frames_rx[6], 4);
        // Every peer (publisher included) acks its local delivery.
        assert_eq!(snap.frames_tx[7], 4);
        assert_eq!(snap.frames_rx[7], 4);
        assert_eq!(snap.frames_tx[8], 4, "one shutdown per actor");
        assert_eq!(snap.frames_rx[8], 4);
        assert_eq!(snap.retransmissions, 0);
        assert_eq!(snap.ack_window_expiries, 0);
        assert_eq!(snap.reconnects, 0, "no sockets in-process");
        assert_eq!(snap.garbage_frames, 0);
        // Untraced publish frames carry a 1-byte absent-trace marker:
        // header 8 + pub_id 8 + attempt 4 + publisher 4 + child map (4 +
        // (4 + 4 + 3*4)) + payload (4 + 1) + trace 1.
        assert_eq!(snap.bytes_tx[6], 4 * 54);
        assert_eq!(
            snap.bytes_tx[6],
            4 * encoded_frame_len(&WireMsg::Publish {
                pub_id: 1,
                attempt: 0,
                publisher: 0,
                children: Arc::new(vec![(0, vec![1, 2, 3])]),
                payload: Bytes::from_static(b"s"),
                trace: None,
            })
        );
    }

    #[test]
    fn retransmissions_and_expiries_are_counted() {
        let plan = FaultPlan::seeded(42).with_drop_prob(0.4);
        let mut net = ThreadedNetwork::spawn_with_faults(9, plan, 3);
        let paths: Vec<Vec<u32>> = (1..=8u32).map(|c| vec![0, c]).collect();
        let t = tree(0, paths);
        let r = net.publish(&t, Bytes::from_static(b"r"), Duration::from_secs(4));
        assert_eq!(r.delivered_to.len(), 8);
        net.shutdown();
        let snap = net.stats().snapshot();
        assert_eq!(snap.retransmissions, r.retries);
        assert!(snap.ack_window_expiries > 0, "a window must have expired");
        assert!(snap.retransmissions >= snap.ack_window_expiries);
    }

    #[test]
    fn tracing_records_a_complete_span_chain() {
        let mut net = ThreadedNetwork::spawn(3);
        net.set_tracing(true);
        assert!(net.tracing());
        let t = tree(0, vec![vec![0, 1, 2]]);
        let r = net.publish(&t, Bytes::from_static(b"t"), Duration::from_secs(5));
        assert_eq!(r.delivered_to, HashSet::from([1, 2]));
        net.shutdown();
        let mut spans = net.drain_spans();
        spans.sort_by_key(|s| s.hop);
        assert_eq!(spans.len(), 3, "publisher + both chain peers");
        assert_eq!(spans[0].peer, 0);
        assert_eq!(spans[0].parent_span, 0, "root span hangs off the driver");
        assert_eq!(spans[1].parent_span, spans[0].span_id);
        assert_eq!(spans[2].parent_span, spans[1].span_id);
        assert_eq!(
            spans.iter().map(|s| s.hop).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        assert!(spans.iter().all(|s| s.attempt == 0));
        assert!(
            spans.windows(2).all(|w| w[0].wall_us <= w[1].wall_us),
            "shared epoch orders the chain"
        );
        // Chain assembly agrees with the delivery set.
        let mut asm = osn_obs::TraceAssembler::new();
        asm.absorb(spans);
        assert!(asm.chain_complete(1, &[0, 1, 2]));
    }

    #[test]
    fn tracing_off_records_nothing_and_drain_is_idempotent() {
        let mut net = ThreadedNetwork::spawn(3);
        let t = tree(0, vec![vec![0, 1], vec![0, 2]]);
        net.publish(&t, Bytes::from_static(b"u"), Duration::from_secs(5));
        net.shutdown();
        assert!(net.drain_spans().is_empty());
        assert!(net.drain_spans().is_empty());
    }
}
