//! Concurrent actor runtime: one thread per peer, channels as links.
//!
//! This is the in-process stand-in for the paper's WebRTC browser peers:
//! every peer runs on its own OS thread, owns a receiver, and forwards real
//! `bytes::Bytes` payloads to its dissemination-tree children. Payload
//! buffers are reference-counted (`Bytes::clone` is O(1)), mirroring how a
//! real node relays a buffer it holds.
//!
//! The runtime checks *behaviour* (every subscriber receives exactly one
//! copy, forwarding follows the tree, concurrent publications don't
//! interfere); timing fidelity is the job of [`crate::timing`].

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};
use osn_sim::FaultPlan;
use select_core::pubsub::RoutingTree;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Messages exchanged between peer actors.
enum NetMsg {
    /// A payload for publication `pub_id`, to be delivered locally and
    /// forwarded to `children[self]`.
    Payload {
        pub_id: u64,
        /// Retransmission attempt (0 = the original dissemination); feeds
        /// the fault plan so retries redraw their drop decisions.
        attempt: u32,
        payload: Bytes,
        /// Forwarding plan: child lists per peer for this publication.
        children: std::sync::Arc<HashMap<u32, Vec<u32>>>,
    },
    /// Shut the actor down.
    Stop,
}

/// A delivery record sent to the collector.
#[derive(Clone, Debug, PartialEq, Eq)]
struct Delivery {
    pub_id: u64,
    peer: u32,
    bytes: usize,
}

/// Outcome of one threaded publication.
#[derive(Clone, Debug)]
pub struct PublishResult {
    /// Peers that received the payload (excluding the publisher).
    pub delivered_to: HashSet<u32>,
    /// Total bytes received across all peers.
    pub bytes_received: usize,
    /// Transmissions the fault plan dropped during this publication.
    pub drops_injected: u64,
    /// Direct retransmissions the publisher sent after ack timeouts.
    pub retries: u64,
}

impl PublishResult {
    /// Folds this publication into `rec`: hop counts for every delivered
    /// peer (depth along its tree path), relay load from the tree's
    /// forwarding fan-out, and the retransmission count. Everything
    /// recorded is derived from the tree and the delivery set — never from
    /// wall clocks — so replaying the same tree and fault plan reproduces
    /// the same histograms.
    pub fn record_into(&self, tree: &RoutingTree, rec: &mut osn_obs::PublishRecorder) {
        for path in tree.paths() {
            let Some(&subscriber) = path.last() else {
                continue;
            };
            if !self.delivered_to.contains(&subscriber) {
                continue;
            }
            rec.hops.record((path.len().saturating_sub(1)) as u64);
            rec.stretch.record((path.len().saturating_sub(2)) as u64);
        }
        for (peer, sends) in tree.forwards_per_peer() {
            rec.relay_load_add(peer, sends);
        }
        rec.note_retries(self.retries);
    }
}

/// Smallest ack window [`ThreadedNetwork::publish`] will wait before
/// declaring a retransmission wave. Keeps huge retry budgets from slicing
/// the timeout into windows too short for any ack to arrive.
const MIN_ACK_WINDOW: Duration = Duration::from_millis(20);

/// A network of peer actors.
pub struct ThreadedNetwork {
    senders: Vec<Sender<NetMsg>>,
    handles: Vec<JoinHandle<()>>,
    deliveries: Receiver<Delivery>,
    next_pub_id: u64,
    /// Retransmission waves `publish` may use after the first ack window.
    retry_max: u32,
    drops: Arc<AtomicU64>,
}

impl ThreadedNetwork {
    /// Spawns `n` peer actors on a fault-free network.
    pub fn spawn(n: usize) -> Self {
        Self::spawn_with_faults(n, FaultPlan::disabled(), 0)
    }

    /// Spawns `n` peer actors whose forwards run through `plan`: before
    /// each child send the actor draws the plan's drop decision (keyed by
    /// publication, attempt and directed link — deterministic and
    /// replayable) and sleeps its delay jitter (virtual ms compressed to
    /// wall µs). `retry_max` bounds the publisher-side ack-driven
    /// retransmission waves of [`ThreadedNetwork::publish`].
    pub fn spawn_with_faults(n: usize, plan: FaultPlan, retry_max: u32) -> Self {
        let (delivery_tx, deliveries) = unbounded::<Delivery>();
        let drops = Arc::new(AtomicU64::new(0));
        let mut senders = Vec::with_capacity(n);
        let mut receivers: Vec<Receiver<NetMsg>> = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(rx);
        }
        let mut handles = Vec::with_capacity(n);
        for (id, rx) in receivers.into_iter().enumerate() {
            let peers = senders.clone();
            let delivery_tx = delivery_tx.clone();
            let drops = drops.clone();
            handles.push(std::thread::spawn(move || {
                actor_loop(id as u32, rx, peers, delivery_tx, plan, drops)
            }));
        }
        ThreadedNetwork {
            senders,
            handles,
            deliveries,
            next_pub_id: 1,
            retry_max,
            drops,
        }
    }

    /// Number of peers.
    pub fn len(&self) -> usize {
        self.senders.len()
    }

    /// True if no peers were spawned.
    pub fn is_empty(&self) -> bool {
        self.senders.is_empty()
    }

    /// Publishes `payload` along `tree`, blocking until every subscriber in
    /// the tree received it (or `timeout` elapsed).
    ///
    /// With a retry budget (see [`ThreadedNetwork::spawn_with_faults`]) the
    /// timeout is split into `retry_max + 1` ack windows: subscribers still
    /// unacked when a window closes are retransmitted to directly, with a
    /// fresh attempt number so the fault plan redraws its drop decisions.
    /// Per-actor dedup keeps redundant copies from double-delivering.
    ///
    /// # Panics
    /// Panics if the tree's publisher is out of range.
    pub fn publish(
        &mut self,
        tree: &RoutingTree,
        payload: Bytes,
        timeout: Duration,
    ) -> PublishResult {
        let pub_id = self.next_pub_id;
        self.next_pub_id += 1;

        let mut children: HashMap<u32, Vec<u32>> = HashMap::new();
        // edges() is sorted, so each child list arrives already ascending
        // and forwarding order is stable without re-sorting.
        for (u, v) in tree.edges() {
            children.entry(u).or_default().push(v);
        }
        // The publisher can appear as a tree child (cyclic paths in a
        // malformed tree, or a path that revisits the source); its local
        // delivery is filtered out of `delivered_to` below, so counting it
        // here would make the ack loop unsatisfiable and burn every retry
        // window.
        let expect: HashSet<u32> = children
            .values()
            .flatten()
            .copied()
            .filter(|&p| p != tree.publisher)
            .collect();
        let children = std::sync::Arc::new(children);
        let drops_before = self.drops.load(Ordering::Relaxed);

        let mut result = PublishResult {
            delivered_to: HashSet::new(),
            bytes_received: 0,
            drops_injected: 0,
            retries: 0,
        };
        // A tree built against a different network (publisher out of range)
        // or a runtime already shut down delivers nothing rather than
        // panicking mid-delivery.
        let seeded = self.senders.get(tree.publisher as usize).map(|tx| {
            tx.send(NetMsg::Payload {
                pub_id,
                attempt: 0,
                payload: payload.clone(),
                children: children.clone(),
            })
        });
        if !matches!(seeded, Some(Ok(()))) {
            return result;
        }
        let windows = self.retry_max + 1;
        // Floor the per-window duration: with `timeout < retry_max + 1` ms
        // the division yields (near-)zero windows, `recv_timeout` returns
        // immediately, and retransmission waves fire back-to-back without
        // ever waiting for acks.
        let window = (timeout / windows).max(MIN_ACK_WINDOW);
        for attempt in 0..windows {
            let deadline = std::time::Instant::now() + window;
            while result.delivered_to.len() < expect.len() {
                let remaining = deadline.saturating_duration_since(std::time::Instant::now());
                match self.deliveries.recv_timeout(remaining) {
                    // The publisher's own local delivery does not count.
                    Ok(d) if d.pub_id == pub_id && d.peer != tree.publisher => {
                        if result.delivered_to.insert(d.peer) {
                            result.bytes_received += d.bytes;
                        }
                    }
                    Ok(_) => {} // stale delivery from an earlier publication
                    Err(_) => break,
                }
            }
            if result.delivered_to.len() >= expect.len() || attempt + 1 >= windows {
                break;
            }
            // Ack window closed with subscribers missing: retransmit to
            // each directly. The shared children map rides along, so a
            // relay that lost its whole subtree re-forwards downstream.
            let mut unreached: Vec<u32> = expect
                .iter()
                .copied()
                .filter(|p| !result.delivered_to.contains(p) && *p != tree.publisher)
                .collect();
            unreached.sort_unstable();
            for peer in unreached {
                let Some(tx) = self.senders.get(peer as usize) else {
                    continue; // malformed tree edge: no such peer to retry
                };
                result.retries += 1;
                let _ = tx.send(NetMsg::Payload {
                    pub_id,
                    attempt: attempt + 1,
                    payload: payload.clone(),
                    children: children.clone(),
                });
            }
        }
        result.drops_injected = self.drops.load(Ordering::Relaxed) - drops_before;
        result
    }

    /// Stops all actors and joins their threads.
    pub fn shutdown(mut self) {
        for tx in &self.senders {
            let _ = tx.send(NetMsg::Stop);
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn actor_loop(
    id: u32,
    rx: Receiver<NetMsg>,
    peers: Vec<Sender<NetMsg>>,
    deliveries: Sender<Delivery>,
    plan: FaultPlan,
    drops: Arc<AtomicU64>,
) {
    // Each actor remembers publications it already handled so duplicate
    // forwards (diamond trees, retransmissions) deliver once.
    let mut seen: HashSet<u64> = HashSet::new();
    while let Ok(msg) = rx.recv() {
        match msg {
            NetMsg::Payload {
                pub_id,
                attempt,
                payload,
                children,
            } => {
                if !seen.insert(pub_id) {
                    continue;
                }
                let _ = deliveries.send(Delivery {
                    pub_id,
                    peer: id,
                    bytes: payload.len(),
                });
                if let Some(kids) = children.get(&id) {
                    for &c in kids {
                        if plan.drops(pub_id, attempt, id, c) {
                            drops.fetch_add(1, Ordering::Relaxed);
                            continue;
                        }
                        // Delay jitter: virtual ms compressed to wall µs so
                        // tests stay fast while ordering pressure is real.
                        let jitter = plan.delay_ms(pub_id, attempt, id, c);
                        if jitter > 0.0 {
                            std::thread::sleep(Duration::from_micros(jitter.ceil() as u64));
                        }
                        let Some(tx) = peers.get(c as usize) else {
                            continue; // malformed tree edge: no such peer
                        };
                        let _ = tx.send(NetMsg::Payload {
                            pub_id,
                            attempt,
                            payload: payload.clone(),
                            children: children.clone(),
                        });
                    }
                }
            }
            NetMsg::Stop => break,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree(publisher: u32, paths: Vec<Vec<u32>>) -> RoutingTree {
        RoutingTree::from_paths(publisher, paths)
    }

    #[test]
    fn payload_reaches_every_tree_node() {
        let mut net = ThreadedNetwork::spawn(6);
        let t = tree(0, vec![vec![0, 1, 2], vec![0, 3], vec![0, 1, 4]]);
        let payload = Bytes::from(vec![7u8; 1024]);
        let r = net.publish(&t, payload, Duration::from_secs(5));
        let got: HashSet<u32> = r.delivered_to.clone();
        assert_eq!(got, HashSet::from([1, 2, 3, 4]));
        assert_eq!(r.bytes_received, 4 * 1024);
        net.shutdown();
    }

    #[test]
    fn publisher_delivery_excluded() {
        let mut net = ThreadedNetwork::spawn(3);
        let t = tree(0, vec![vec![0, 1]]);
        let r = net.publish(&t, Bytes::from_static(b"x"), Duration::from_secs(5));
        assert!(!r.delivered_to.contains(&0));
        net.shutdown();
    }

    #[test]
    fn sequential_publications_do_not_interfere() {
        let mut net = ThreadedNetwork::spawn(4);
        let t1 = tree(0, vec![vec![0, 1], vec![0, 2]]);
        let t2 = tree(3, vec![vec![3, 2]]);
        let r1 = net.publish(&t1, Bytes::from_static(b"aa"), Duration::from_secs(5));
        let r2 = net.publish(&t2, Bytes::from_static(b"bbb"), Duration::from_secs(5));
        assert_eq!(r1.delivered_to, HashSet::from([1, 2]));
        assert_eq!(r2.delivered_to, HashSet::from([2]));
        assert_eq!(r2.bytes_received, 3);
        net.shutdown();
    }

    #[test]
    fn payload_size_of_paper_scale_works() {
        // The paper's 1.2 MB payload through a small chain.
        let mut net = ThreadedNetwork::spawn(3);
        let t = tree(0, vec![vec![0, 1, 2]]);
        let payload = Bytes::from(vec![0u8; 1_200_000]);
        let r = net.publish(&t, payload, Duration::from_secs(10));
        assert_eq!(r.delivered_to.len(), 2);
        assert_eq!(r.bytes_received, 2 * 1_200_000);
        net.shutdown();
    }

    #[test]
    fn empty_tree_returns_immediately() {
        let mut net = ThreadedNetwork::spawn(2);
        let t = tree(0, vec![]);
        let r = net.publish(&t, Bytes::from_static(b"y"), Duration::from_millis(200));
        assert!(r.delivered_to.is_empty());
        net.shutdown();
    }

    #[test]
    fn fault_free_spawn_reports_zero_faults() {
        let mut net = ThreadedNetwork::spawn(4);
        let t = tree(0, vec![vec![0, 1, 2], vec![0, 3]]);
        let r = net.publish(&t, Bytes::from_static(b"z"), Duration::from_secs(5));
        assert_eq!(r.delivered_to, HashSet::from([1, 2, 3]));
        assert_eq!(r.drops_injected, 0);
        assert_eq!(r.retries, 0);
        net.shutdown();
    }

    #[test]
    fn fire_and_forget_drops_match_the_plan() {
        // Star tree 0 -> {1..=8}; no retries, so delivery is exactly the
        // set of children whose (pub 1, attempt 0) edge survives the plan.
        let plan = FaultPlan::seeded(42).with_drop_prob(0.4);
        let expected: HashSet<u32> = (1..=8u32).filter(|&c| !plan.drops(1, 0, 0, c)).collect();
        let dropped = 8 - expected.len() as u64;
        assert!(
            !expected.is_empty() && dropped > 0,
            "seed 42 should mix outcomes (expected {expected:?})"
        );
        let mut net = ThreadedNetwork::spawn_with_faults(9, plan, 0);
        let paths: Vec<Vec<u32>> = (1..=8u32).map(|c| vec![0, c]).collect();
        let t = tree(0, paths);
        let r = net.publish(&t, Bytes::from_static(b"d"), Duration::from_millis(800));
        assert_eq!(r.delivered_to, expected);
        assert_eq!(r.drops_injected, dropped);
        assert_eq!(r.retries, 0);
        net.shutdown();
    }

    #[test]
    fn retries_recover_dropped_subscribers() {
        // Same lossy star, but with a retry budget: retransmissions go
        // straight to unacked peers, so everyone is reached.
        let plan = FaultPlan::seeded(42).with_drop_prob(0.4);
        let mut net = ThreadedNetwork::spawn_with_faults(9, plan, 3);
        let paths: Vec<Vec<u32>> = (1..=8u32).map(|c| vec![0, c]).collect();
        let t = tree(0, paths);
        let r = net.publish(&t, Bytes::from_static(b"r"), Duration::from_secs(4));
        assert_eq!(r.delivered_to.len(), 8, "retries should reach all peers");
        assert!(r.retries > 0, "the lossy plan must have forced retries");
        assert!(r.drops_injected > 0);
        net.shutdown();
    }

    #[test]
    fn record_into_populates_hops_and_relay_load() {
        let mut net = ThreadedNetwork::spawn(6);
        let t = tree(0, vec![vec![0, 1, 2], vec![0, 3], vec![0, 1, 4]]);
        let r = net.publish(&t, Bytes::from_static(b"m"), Duration::from_secs(5));
        net.shutdown();
        let mut rec = osn_obs::PublishRecorder::preallocated(6);
        r.record_into(&t, &mut rec);
        assert_eq!(rec.hops.count(), 3, "one hop sample per delivered path");
        assert_eq!(rec.hops.max(), 2);
        assert_eq!(rec.retries.count(), 1);
        // Peer 0 fans out to {1, 3} (peer 1 deduped), peer 1 to {2, 4}.
        assert_eq!(rec.relay_load()[0], 2);
        assert_eq!(rec.relay_load()[1], 2);
    }

    #[test]
    fn publisher_in_child_list_does_not_burn_ack_windows() {
        // A path that revisits the publisher puts it into a child list, so
        // it lands in the expectation set unless filtered. Before the fix
        // the ack loop could never satisfy `delivered_to.len() >=
        // expect.len()` (the publisher's local delivery is excluded) and
        // burned the entire timeout across every retry window.
        let mut net = ThreadedNetwork::spawn_with_faults(3, FaultPlan::disabled(), 3);
        let t = tree(0, vec![vec![0, 1, 0], vec![0, 2]]);
        let start = std::time::Instant::now();
        let r = net.publish(&t, Bytes::from_static(b"p"), Duration::from_secs(8));
        let elapsed = start.elapsed();
        assert_eq!(r.delivered_to, HashSet::from([1, 2]));
        assert_eq!(r.retries, 0, "fault-free publish must not retransmit");
        assert!(
            elapsed < Duration::from_secs(4),
            "ack loop burned the timeout ({elapsed:?}) waiting on the publisher's own ack"
        );
        net.shutdown();
    }

    #[test]
    fn tiny_timeout_with_large_retry_budget_still_waits_for_acks() {
        // timeout (2 ms) < retry_max + 1 (101) used to yield zero-length
        // ack windows: recv_timeout broke instantly and 100 retransmission
        // waves fired back-to-back. The floored window gives the first
        // wave time to be acked, so a fault-free star needs no retries.
        let mut net = ThreadedNetwork::spawn_with_faults(5, FaultPlan::disabled(), 100);
        let paths: Vec<Vec<u32>> = (1..=4u32).map(|c| vec![0, c]).collect();
        let t = tree(0, paths);
        let r = net.publish(&t, Bytes::from_static(b"w"), Duration::from_millis(2));
        assert_eq!(r.delivered_to, HashSet::from([1, 2, 3, 4]));
        assert_eq!(r.retries, 0, "floored ack window must absorb the acks");
        net.shutdown();
    }

    #[test]
    fn delay_jitter_does_not_lose_messages() {
        let plan = FaultPlan::seeded(7).with_max_delay_ms(30.0);
        let mut net = ThreadedNetwork::spawn_with_faults(5, plan, 0);
        let t = tree(0, vec![vec![0, 1, 2], vec![0, 3, 4]]);
        let r = net.publish(&t, Bytes::from_static(b"j"), Duration::from_secs(5));
        assert_eq!(r.delivered_to, HashSet::from([1, 2, 3, 4]));
        assert_eq!(r.drops_injected, 0);
        net.shutdown();
    }
}
