//! Concurrent actor runtime: one thread per peer, channels as links.
//!
//! This is the in-process stand-in for the paper's WebRTC browser peers:
//! every peer runs on its own OS thread, owns a receiver, and forwards real
//! `bytes::Bytes` payloads to its dissemination-tree children. Payload
//! buffers are reference-counted (`Bytes::clone` is O(1)), mirroring how a
//! real node relays a buffer it holds.
//!
//! The runtime checks *behaviour* (every subscriber receives exactly one
//! copy, forwarding follows the tree, concurrent publications don't
//! interfere); timing fidelity is the job of [`crate::timing`].

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};
use select_core::pubsub::RoutingTree;
use std::collections::{HashMap, HashSet};
use std::thread::JoinHandle;
use std::time::Duration;

/// Messages exchanged between peer actors.
enum NetMsg {
    /// A payload for publication `pub_id`, to be delivered locally and
    /// forwarded to `children[self]`.
    Payload {
        pub_id: u64,
        payload: Bytes,
        /// Forwarding plan: child lists per peer for this publication.
        children: std::sync::Arc<HashMap<u32, Vec<u32>>>,
    },
    /// Shut the actor down.
    Stop,
}

/// A delivery record sent to the collector.
#[derive(Clone, Debug, PartialEq, Eq)]
struct Delivery {
    pub_id: u64,
    peer: u32,
    bytes: usize,
}

/// Outcome of one threaded publication.
#[derive(Clone, Debug)]
pub struct PublishResult {
    /// Peers that received the payload (excluding the publisher).
    pub delivered_to: HashSet<u32>,
    /// Total bytes received across all peers.
    pub bytes_received: usize,
}

/// A network of peer actors.
pub struct ThreadedNetwork {
    senders: Vec<Sender<NetMsg>>,
    handles: Vec<JoinHandle<()>>,
    deliveries: Receiver<Delivery>,
    next_pub_id: u64,
}

impl ThreadedNetwork {
    /// Spawns `n` peer actors.
    pub fn spawn(n: usize) -> Self {
        let (delivery_tx, deliveries) = unbounded::<Delivery>();
        let mut senders = Vec::with_capacity(n);
        let mut receivers: Vec<Receiver<NetMsg>> = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(rx);
        }
        let mut handles = Vec::with_capacity(n);
        for (id, rx) in receivers.into_iter().enumerate() {
            let peers = senders.clone();
            let delivery_tx = delivery_tx.clone();
            handles.push(std::thread::spawn(move || {
                actor_loop(id as u32, rx, peers, delivery_tx)
            }));
        }
        ThreadedNetwork {
            senders,
            handles,
            deliveries,
            next_pub_id: 1,
        }
    }

    /// Number of peers.
    pub fn len(&self) -> usize {
        self.senders.len()
    }

    /// True if no peers were spawned.
    pub fn is_empty(&self) -> bool {
        self.senders.is_empty()
    }

    /// Publishes `payload` along `tree`, blocking until every subscriber in
    /// the tree received it (or `timeout` elapsed).
    ///
    /// # Panics
    /// Panics if the tree's publisher is out of range.
    pub fn publish(
        &mut self,
        tree: &RoutingTree,
        payload: Bytes,
        timeout: Duration,
    ) -> PublishResult {
        let pub_id = self.next_pub_id;
        self.next_pub_id += 1;

        let mut children: HashMap<u32, Vec<u32>> = HashMap::new();
        for (u, v) in tree.edges() {
            children.entry(u).or_default().push(v);
        }
        // edges() iterates a HashSet; sort so forwarding order is stable.
        for c in children.values_mut() {
            c.sort_unstable();
        }
        let expect: HashSet<u32> = children.values().flatten().copied().collect();
        let children = std::sync::Arc::new(children);

        self.senders[tree.publisher as usize]
            .send(NetMsg::Payload {
                pub_id,
                payload,
                children,
            })
            .expect("publisher actor alive");

        let mut result = PublishResult {
            delivered_to: HashSet::new(),
            bytes_received: 0,
        };
        let deadline = std::time::Instant::now() + timeout;
        while result.delivered_to.len() < expect.len() {
            let remaining = deadline.saturating_duration_since(std::time::Instant::now());
            match self.deliveries.recv_timeout(remaining) {
                // The publisher's own local delivery does not count.
                Ok(d) if d.pub_id == pub_id && d.peer != tree.publisher => {
                    if result.delivered_to.insert(d.peer) {
                        result.bytes_received += d.bytes;
                    }
                }
                Ok(_) => {} // stale delivery from an earlier publication
                Err(_) => break,
            }
        }
        result
    }

    /// Stops all actors and joins their threads.
    pub fn shutdown(mut self) {
        for tx in &self.senders {
            let _ = tx.send(NetMsg::Stop);
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn actor_loop(
    id: u32,
    rx: Receiver<NetMsg>,
    peers: Vec<Sender<NetMsg>>,
    deliveries: Sender<Delivery>,
) {
    // Each actor remembers publications it already handled so duplicate
    // forwards (diamond trees) deliver once.
    let mut seen: HashSet<u64> = HashSet::new();
    while let Ok(msg) = rx.recv() {
        match msg {
            NetMsg::Payload {
                pub_id,
                payload,
                children,
            } => {
                if !seen.insert(pub_id) {
                    continue;
                }
                let _ = deliveries.send(Delivery {
                    pub_id,
                    peer: id,
                    bytes: payload.len(),
                });
                if let Some(kids) = children.get(&id) {
                    for &c in kids {
                        let _ = peers[c as usize].send(NetMsg::Payload {
                            pub_id,
                            payload: payload.clone(),
                            children: children.clone(),
                        });
                    }
                }
            }
            NetMsg::Stop => break,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree(publisher: u32, paths: Vec<Vec<u32>>) -> RoutingTree {
        RoutingTree {
            publisher,
            paths,
            failed: vec![],
        }
    }

    #[test]
    fn payload_reaches_every_tree_node() {
        let mut net = ThreadedNetwork::spawn(6);
        let t = tree(0, vec![vec![0, 1, 2], vec![0, 3], vec![0, 1, 4]]);
        let payload = Bytes::from(vec![7u8; 1024]);
        let r = net.publish(&t, payload, Duration::from_secs(5));
        let got: HashSet<u32> = r.delivered_to.clone();
        assert_eq!(got, HashSet::from([1, 2, 3, 4]));
        assert_eq!(r.bytes_received, 4 * 1024);
        net.shutdown();
    }

    #[test]
    fn publisher_delivery_excluded() {
        let mut net = ThreadedNetwork::spawn(3);
        let t = tree(0, vec![vec![0, 1]]);
        let r = net.publish(&t, Bytes::from_static(b"x"), Duration::from_secs(5));
        assert!(!r.delivered_to.contains(&0));
        net.shutdown();
    }

    #[test]
    fn sequential_publications_do_not_interfere() {
        let mut net = ThreadedNetwork::spawn(4);
        let t1 = tree(0, vec![vec![0, 1], vec![0, 2]]);
        let t2 = tree(3, vec![vec![3, 2]]);
        let r1 = net.publish(&t1, Bytes::from_static(b"aa"), Duration::from_secs(5));
        let r2 = net.publish(&t2, Bytes::from_static(b"bbb"), Duration::from_secs(5));
        assert_eq!(r1.delivered_to, HashSet::from([1, 2]));
        assert_eq!(r2.delivered_to, HashSet::from([2]));
        assert_eq!(r2.bytes_received, 3);
        net.shutdown();
    }

    #[test]
    fn payload_size_of_paper_scale_works() {
        // The paper's 1.2 MB payload through a small chain.
        let mut net = ThreadedNetwork::spawn(3);
        let t = tree(0, vec![vec![0, 1, 2]]);
        let payload = Bytes::from(vec![0u8; 1_200_000]);
        let r = net.publish(&t, payload, Duration::from_secs(10));
        assert_eq!(r.delivered_to.len(), 2);
        assert_eq!(r.bytes_received, 2 * 1_200_000);
        net.shutdown();
    }

    #[test]
    fn empty_tree_returns_immediately() {
        let mut net = ThreadedNetwork::spawn(2);
        let t = tree(0, vec![]);
        let r = net.publish(&t, Bytes::from_static(b"y"), Duration::from_millis(200));
        assert!(r.delivered_to.is_empty());
        net.shutdown();
    }
}
