//! The [`Transport`] abstraction: what every network runtime owes the
//! publish driver.
//!
//! The repository has three ways to move a [`WireMsg`] between peers — the
//! threaded channel runtime ([`crate::runtime`]), the upload-throttled
//! runtime ([`crate::throttled`]) and the TCP socket runtime
//! ([`crate::socket`]). They differ in what a "link" is, but the publisher
//! harness needs the same four capabilities from all of them: inject a
//! frame at a peer, hear events (acks, joins, probe replies) back, count
//! the fault plan's drops, and shut down. [`Transport`] pins exactly that
//! surface, and [`publish_over`] implements the ack-window/retransmission
//! loop **once**, generically — so the retry policy cannot drift between
//! transports and a conformance test can replay one seed over two
//! transports and compare delivery sets.
//!
//! Semantics every implementation must honour (the conformance contract):
//!
//! * [`Transport::send_to`] is a **driver injection**: it draws no fault
//!   decision. Only peer→child forwards inside the transport consult the
//!   [`osn_sim::FaultPlan`], via [`osn_sim::FaultPlan::frame_fate`].
//! * Each peer deduplicates publications by `pub_id` and acks exactly once.
//! * [`Transport::shutdown`] is idempotent, and dropping a transport shuts
//!   it down.

use crate::stats::TransportStats;
use bytes::Bytes;
use osn_obs::trace::SpanRecord;
use select_core::pubsub::RoutingTree;
use select_core::wire::{children_of, TraceContext, WireMsg};
use std::collections::HashSet;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

/// Where a peer lives, for diagnostics and harness wiring.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PeerAddr {
    /// An in-process actor, addressed by peer id over channels.
    InProc(u32),
    /// A socket peer listening on a real (loopback) TCP address.
    Tcp(SocketAddr),
}

/// One way of moving [`WireMsg`] frames between peer actors.
///
/// Object-safe on purpose: harness code holds `&mut dyn Transport` to swap
/// runtimes behind one publish path (see [`publish_over`]).
pub trait Transport {
    /// Number of peers.
    fn len(&self) -> usize;

    /// True if no peers were spawned.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Injects `msg` directly at peer `to`, from the driver. Returns
    /// `false` if the peer does not exist or the transport is shut down.
    /// Driver injections draw **no** fault decision — only peer→child
    /// forwards inside the transport do.
    fn send_to(&mut self, to: u32, msg: WireMsg) -> bool;

    /// Next driver-bound event frame (ack, join, probe reply), or `None`
    /// when `timeout` elapses first.
    fn recv_event(&mut self, timeout: Duration) -> Option<WireMsg>;

    /// Total transmissions the fault plan has dropped so far.
    fn drops_injected(&self) -> u64;

    /// Where `peer` is reachable, if it exists.
    fn peer_addr(&self, peer: u32) -> Option<PeerAddr>;

    /// Stops every peer and reclaims resources. Idempotent: safe to call
    /// any number of times, and implementations also invoke it on drop.
    fn shutdown(&mut self);

    /// This transport's live wire-telemetry counters (shared with its peer
    /// threads). Counting conventions: every frame records tx at its
    /// sender and rx at its receiver, with byte sizes from
    /// [`crate::codec::encoded_frame_len`], so the in-process transports
    /// report the same totals the socket transport pays for real.
    fn stats(&self) -> &TransportStats;

    /// Turns wire-level tracing on or off for subsequent publications.
    /// When on, [`publish_over`] stamps a root [`TraceContext`] into every
    /// publish frame and peers record delivery spans.
    fn set_tracing(&mut self, on: bool);

    /// Whether publish frames are currently being stamped with trace
    /// contexts.
    fn tracing(&self) -> bool;

    /// Drains the span records this transport collected. The socket
    /// transport buffers spans on its peer threads and flushes them when
    /// they exit, so its set is complete only after
    /// [`Transport::shutdown`]; the in-process runtimes materialize spans
    /// driver-side from ack echoes as the acks are processed. Either way,
    /// draining after shutdown observes every span.
    fn drain_spans(&mut self) -> Vec<SpanRecord>;
}

/// Smallest ack window [`publish_over`] will wait before declaring a
/// retransmission wave. Keeps huge retry budgets from slicing the timeout
/// into windows too short for any ack to arrive.
pub const MIN_ACK_WINDOW: Duration = Duration::from_millis(20);

/// Outcome of one publication over a [`Transport`].
#[derive(Clone, Debug)]
pub struct PublishResult {
    /// Peers that received the payload (excluding the publisher).
    pub delivered_to: HashSet<u32>,
    /// Total bytes received across all peers.
    pub bytes_received: usize,
    /// Transmissions the fault plan dropped during this publication.
    pub drops_injected: u64,
    /// Direct retransmissions the publisher sent after ack timeouts.
    pub retries: u64,
}

impl PublishResult {
    /// Folds this publication into `rec`: hop counts for every delivered
    /// peer (depth along its tree path), relay load from the tree's
    /// forwarding fan-out, and the retransmission count. Everything
    /// recorded is derived from the tree and the delivery set — never from
    /// wall clocks — so replaying the same tree and fault plan reproduces
    /// the same histograms.
    pub fn record_into(&self, tree: &RoutingTree, rec: &mut osn_obs::PublishRecorder) {
        for path in tree.paths() {
            let Some(&subscriber) = path.last() else {
                continue;
            };
            if !self.delivered_to.contains(&subscriber) {
                continue;
            }
            rec.hops.record((path.len().saturating_sub(1)) as u64);
            rec.stretch.record((path.len().saturating_sub(2)) as u64);
        }
        for (peer, sends) in tree.forwards_per_peer() {
            rec.relay_load_add(peer, sends);
        }
        rec.note_retries(self.retries);
    }
}

/// Publishes `payload` along `tree` over any [`Transport`], blocking until
/// every subscriber in the tree acked (or `timeout` elapsed).
///
/// The timeout is split into `retry_max + 1` ack windows (each at least
/// [`MIN_ACK_WINDOW`]): subscribers still unacked when a window closes are
/// retransmitted to directly, with a fresh attempt number so the fault plan
/// redraws its drop decisions. Per-peer dedup inside the transport keeps
/// redundant copies from double-delivering. `pub_id` must be unique per
/// publication on this transport — it keys both dedup and the fault plan.
pub fn publish_over<T: Transport + ?Sized>(
    net: &mut T,
    tree: &RoutingTree,
    payload: Bytes,
    timeout: Duration,
    retry_max: u32,
    pub_id: u64,
) -> PublishResult {
    // edges() is sorted, so the child map arrives ordered and forwarding
    // order is stable without re-sorting.
    let children = Arc::new(children_of(tree));
    // The publisher can appear as a tree child (cyclic paths in a malformed
    // tree, or a path that revisits the source); its local delivery is
    // filtered out of `delivered_to` below, so counting it here would make
    // the ack loop unsatisfiable and burn every retry window.
    let expect: HashSet<u32> = children
        .iter()
        .flat_map(|(_, kids)| kids.iter().copied())
        .filter(|&p| p != tree.publisher)
        .collect();
    let drops_before = net.drops_injected();

    let mut result = PublishResult {
        delivered_to: HashSet::new(),
        bytes_received: 0,
        drops_injected: 0,
        retries: 0,
    };
    // When tracing, every frame of this publication carries the root
    // context (trace id = publication id); peers re-stamp forwards with
    // themselves as parent. Presence of the context IS the sampling bit.
    let trace = net.tracing().then(|| TraceContext::root(pub_id));
    // A tree built against a different network (publisher out of range) or
    // a transport already shut down delivers nothing rather than panicking
    // mid-delivery.
    let seeded = net.send_to(
        tree.publisher,
        WireMsg::Publish {
            pub_id,
            attempt: 0,
            publisher: tree.publisher,
            children: children.clone(),
            payload: payload.clone(),
            trace,
        },
    );
    if !seeded {
        return result;
    }
    let windows = retry_max + 1;
    // Floor the per-window duration: with `timeout < retry_max + 1` ms the
    // division yields (near-)zero windows, `recv_event` returns
    // immediately, and retransmission waves fire back-to-back without ever
    // waiting for acks.
    let window = (timeout / windows).max(MIN_ACK_WINDOW);
    for attempt in 0..windows {
        // selint: allow(ambient-nondet, real-I/O ack deadline; delivery sets stay plan-deterministic)
        let deadline = std::time::Instant::now() + window;
        while result.delivered_to.len() < expect.len() {
            // selint: allow(ambient-nondet, countdown against the waived deadline above)
            let remaining = deadline.saturating_duration_since(std::time::Instant::now());
            match net.recv_event(remaining) {
                // The publisher's own local delivery does not count.
                Some(WireMsg::Ack {
                    pub_id: acked,
                    peer,
                    bytes,
                    trace: _,
                }) if acked == pub_id && peer != tree.publisher => {
                    if result.delivered_to.insert(peer) {
                        result.bytes_received += bytes as usize;
                    }
                }
                Some(_) => {} // stale ack or unrelated event frame
                None => break,
            }
        }
        if result.delivered_to.len() >= expect.len() || attempt + 1 >= windows {
            break;
        }
        // Ack window closed with subscribers missing: retransmit to each
        // directly. The shared children map rides along, so a relay that
        // lost its whole subtree re-forwards downstream.
        net.stats().note_ack_window_expiry();
        let mut unreached: Vec<u32> = expect
            .iter()
            .copied()
            .filter(|p| !result.delivered_to.contains(p))
            .collect();
        unreached.sort_unstable();
        for peer in unreached {
            // send_to refuses malformed tree edges (no such peer to retry).
            if net.send_to(
                peer,
                WireMsg::Publish {
                    pub_id,
                    attempt: attempt + 1,
                    publisher: tree.publisher,
                    children: children.clone(),
                    payload: payload.clone(),
                    trace,
                },
            ) {
                result.retries += 1;
                net.stats().note_retransmission();
            }
        }
    }
    result.drops_injected = net.drops_injected() - drops_before;
    result
}
