//! Virtual-time dissemination timing over a routing tree.
//!
//! Store-and-forward model: a peer starts uploading a payload only after it
//! has fully received it; its uploads to its tree children are serialized
//! (one NIC), each costing `payload / bandwidth`, and each link adds its own
//! propagation latency. These are exactly the effects the paper isolates:
//! the star experiment shows the serialization law; Fig. 7 shows how tree
//! shape (SELECT) vs. hub fan-out (random) changes total dissemination time.

use osn_sim::latency::{transfer_time, LinkModel, PAYLOAD_BYTES};
use osn_sim::BandwidthModel;
use rand::rngs::StdRng;
use rand::SeedableRng;
use select_core::pubsub::RoutingTree;
use std::collections::HashMap;

/// Per-subscriber arrival times of one dissemination.
#[derive(Clone, Debug, Default)]
pub struct DisseminationTiming {
    /// Arrival time (virtual ms) per reached peer (publisher at 0).
    pub arrival: HashMap<u32, f64>,
    /// The paper's dissemination latency `l(b, S_b) = max_s l(b, s)`.
    pub max_latency: f64,
    /// Mean arrival time over reached subscribers.
    pub mean_latency: f64,
}

/// Deterministic transfer-time simulator.
#[derive(Clone, Debug)]
pub struct TransferSim {
    bandwidth: Vec<f64>,
    links: LinkModel,
    seed: u64,
    /// Payload size in bytes (defaults to the paper's 1.2 MB).
    pub payload: u64,
}

impl TransferSim {
    /// Samples per-peer bandwidths for `n` peers from the default model.
    pub fn new(n: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x7e1e_c000);
        TransferSim {
            bandwidth: BandwidthModel::default().sample_all(&mut rng, n),
            links: LinkModel::default(),
            seed,
            payload: PAYLOAD_BYTES,
        }
    }

    /// Uses explicit bandwidths (e.g. the ones a `SelectNetwork` sampled).
    pub fn with_bandwidths(bandwidth: Vec<f64>, seed: u64) -> Self {
        TransferSim {
            bandwidth,
            links: LinkModel::default(),
            seed,
            payload: PAYLOAD_BYTES,
        }
    }

    /// Upload bandwidth of `p`.
    pub fn bandwidth_of(&self, p: u32) -> f64 {
        self.bandwidth[p as usize]
    }

    /// One-link payload latency `latency(a,b) + payload/bw(a)`.
    pub fn link_cost(&self, from: u32, to: u32) -> f64 {
        self.links.latency_of(from, to, self.seed)
            + transfer_time(self.payload, self.bandwidth_of(from))
    }

    /// Simulates store-and-forward dissemination over `tree`.
    ///
    /// Children of each node are served in ascending-id order; child `i`
    /// (0-based) receives after `(i+1)` serialized uploads plus link latency.
    pub fn simulate(&self, tree: &RoutingTree) -> DisseminationTiming {
        // Build children lists from the deduplicated tree edges.
        let mut children: HashMap<u32, Vec<u32>> = HashMap::new();
        for (u, v) in tree.edges() {
            children.entry(u).or_default().push(v);
        }
        for c in children.values_mut() {
            c.sort_unstable();
        }

        let mut timing = DisseminationTiming::default();
        timing.arrival.insert(tree.publisher, 0.0);
        // BFS in arrival order; the tree is acyclic by construction so a
        // simple queue works.
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(tree.publisher);
        while let Some(u) = queue.pop_front() {
            let t0 = timing.arrival[&u];
            if let Some(kids) = children.get(&u) {
                let upload = transfer_time(self.payload, self.bandwidth_of(u));
                for (i, &v) in kids.iter().enumerate() {
                    let arrive =
                        t0 + (i as f64 + 1.0) * upload + self.links.latency_of(u, v, self.seed);
                    // A peer may appear in several paths; keep the earliest.
                    let slot = timing.arrival.entry(v).or_insert(f64::INFINITY);
                    if arrive < *slot {
                        *slot = arrive;
                        queue.push_back(v);
                    }
                }
            }
        }

        // Latency statistics over the subscribers actually reached (exclude
        // the publisher itself).
        let subscriber_arrivals: Vec<f64> = tree
            .paths()
            .filter_map(|p| p.last())
            .filter(|&&s| s != tree.publisher)
            .filter_map(|s| timing.arrival.get(s).copied())
            .collect();
        if !subscriber_arrivals.is_empty() {
            timing.max_latency = subscriber_arrivals.iter().cloned().fold(0.0, f64::max);
            timing.mean_latency =
                subscriber_arrivals.iter().sum::<f64>() / subscriber_arrivals.len() as f64;
        }
        timing
    }

    /// The star experiment (§IV-D): one hub uploading the payload to `c`
    /// connections; returns total completion time, which is linear in `c`.
    pub fn star_total_time(&self, hub: u32, connections: usize) -> f64 {
        connections as f64 * transfer_time(self.payload, self.bandwidth_of(hub))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain_tree() -> RoutingTree {
        RoutingTree::from_paths(0, [vec![0, 1, 2, 3]])
    }

    #[test]
    fn chain_latency_accumulates() {
        let sim = TransferSim::new(4, 1);
        let t = sim.simulate(&chain_tree());
        assert!(t.arrival[&1] > 0.0);
        assert!(t.arrival[&2] > t.arrival[&1]);
        assert!(t.arrival[&3] > t.arrival[&2]);
        assert_eq!(t.max_latency, t.arrival[&3]);
    }

    #[test]
    fn fanout_serializes_uploads() {
        // Publisher with 3 direct children: later children wait for earlier
        // uploads.
        let tree = RoutingTree::from_paths(0, [vec![0, 1], vec![0, 2], vec![0, 3]]);
        let sim = TransferSim::new(4, 2);
        let t = sim.simulate(&tree);
        let upload = transfer_time(sim.payload, sim.bandwidth_of(0));
        // Child 3 (third in id order) waits 3 uploads.
        let expected = 3.0 * upload + LinkModel::default().latency_of(0, 3, 2);
        assert!((t.arrival[&3] - expected).abs() < 1e-9);
    }

    #[test]
    fn shared_prefix_transfers_once() {
        // Paths 0→1→2 and 0→1→3: node 0 uploads once to 1 (one tree edge),
        // so 1's arrival equals a single upload + latency.
        let tree = RoutingTree::from_paths(0, [vec![0, 1, 2], vec![0, 1, 3]]);
        let sim = TransferSim::new(4, 3);
        let t = sim.simulate(&tree);
        let expected = transfer_time(sim.payload, sim.bandwidth_of(0))
            + LinkModel::default().latency_of(0, 1, 3);
        assert!((t.arrival[&1] - expected).abs() < 1e-9);
    }

    #[test]
    fn star_time_is_linear() {
        let sim = TransferSim::new(2, 4);
        let one = sim.star_total_time(0, 1);
        for c in [2usize, 8, 32] {
            assert!((sim.star_total_time(0, c) - c as f64 * one).abs() < 1e-9);
        }
    }

    #[test]
    fn empty_tree_zero_latency() {
        let tree = RoutingTree::new(5);
        let sim = TransferSim::new(6, 5);
        let t = sim.simulate(&tree);
        assert_eq!(t.max_latency, 0.0);
        assert_eq!(t.arrival.len(), 1);
    }

    #[test]
    fn deterministic() {
        let sim = TransferSim::new(4, 7);
        let a = sim.simulate(&chain_tree());
        let b = sim.simulate(&chain_tree());
        assert_eq!(a.arrival, b.arrival);
    }
}
