//! Throttled actor runtime: real threads, real time, modelled bandwidth.
//!
//! [`crate::runtime::ThreadedNetwork`] checks *behaviour*;
//! [`ThrottledNetwork`] additionally makes each peer's uplink cost real
//! wall-clock time: before forwarding the payload to each tree child, the
//! actor sleeps `transfer_time(payload, bw) / compression` — uploads
//! serialize naturally because each peer is one thread. This lets the
//! repository *validate* the virtual-time model of [`crate::timing`]: the
//! same tree, driven by actual concurrent threads, must reproduce the
//! model's arrival-order predictions (see the `agrees_with_transfer_sim`
//! test).

use crate::codec::encoded_frame_len;
use crate::stats::TransportStats;
use crate::transport::{PeerAddr, Transport};
use crossbeam::channel::{unbounded, Receiver, Sender};
use osn_graph::ids::to_u32;
use osn_obs::trace::{span_id, SpanRecord};
use osn_sim::latency::transfer_time;
use osn_sim::FaultPlan;
use select_core::pubsub::RoutingTree;
use select_core::wire::{children_for, children_of, ChildMap, TraceContext, WireMsg};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

enum Msg {
    Payload {
        pub_id: u64,
        /// Virtual payload size in bytes (no buffer needed: the throttle is
        /// the observable, not the copy).
        bytes: u64,
        children: Arc<ChildMap>,
        /// Trace context the delivering frame carried; re-stamped on
        /// forwards and echoed in the synthesized ack, so traced
        /// publications stay causally linked even on this virtual runtime.
        trace: Option<TraceContext>,
    },
    Stop,
}

/// One delivery observation with its wall-clock arrival.
#[derive(Clone, Debug)]
pub struct TimedDelivery {
    /// Receiving peer.
    pub peer: u32,
    /// Wall-clock time since the publication started.
    pub elapsed: Duration,
}

/// Result of a throttled publication.
#[derive(Clone, Debug, Default)]
pub struct TimedPublishResult {
    /// Arrival times per peer, in arrival order.
    pub deliveries: Vec<TimedDelivery>,
}

impl TimedPublishResult {
    /// Arrival time of `peer`, if it was reached.
    pub fn arrival_of(&self, peer: u32) -> Option<Duration> {
        self.deliveries
            .iter()
            .find(|d| d.peer == peer)
            .map(|d| d.elapsed)
    }

    /// The dissemination latency: last arrival.
    pub fn max_latency(&self) -> Duration {
        self.deliveries
            .iter()
            .map(|d| d.elapsed)
            .max()
            .unwrap_or_default()
    }

    /// Per-delivery latency distribution in *virtual* milliseconds: each
    /// wall-clock arrival is stretched back by the spawn's `compression`
    /// factor, undoing the wall-µs compression so the histogram reads on
    /// the same virtual-ms scale as [`crate::timing::TransferSim`]. Wall
    /// clocks jitter, so unlike the core recorders this histogram is a
    /// measurement, not a deterministic replay.
    pub fn latency_histogram(&self, compression: f64) -> osn_obs::Histogram {
        let mut h = osn_obs::Histogram::new();
        for d in &self.deliveries {
            h.record((d.elapsed.as_secs_f64() * 1_000.0 * compression).round() as u64);
        }
        h
    }
}

/// One observed delivery pumped back to the driver: publication, peer,
/// virtual bytes, wall arrival, and the trace context to echo in the
/// synthesized ack.
type Delivery = (u64, u32, u64, Instant, Option<TraceContext>);

/// A network of upload-throttled peer actors.
pub struct ThrottledNetwork {
    senders: Vec<Sender<Msg>>,
    handles: Vec<JoinHandle<()>>,
    deliveries: Receiver<Delivery>,
    next_pub_id: u64,
    drops: Arc<AtomicU64>,
    /// Wire telemetry counted at the driver boundary ([`Transport::send_to`]
    /// / [`Transport::recv_event`]): peer→child forwards are virtual-sized
    /// model events, not frames, so they are not counted.
    stats: TransportStats,
    tracing: bool,
    /// Origin for span wall stamps (delivery `Instant`s from peer threads).
    epoch: Instant,
    /// Driver-materialized spans, one per traced synthesized ack: the
    /// delivery tuple carries the context verbatim plus the peer thread's
    /// arrival stamp, so even this virtual runtime yields causally linked,
    /// wall-stamped traces.
    spans: Vec<SpanRecord>,
}

impl ThrottledNetwork {
    /// Spawns `n` actors with the given per-peer bandwidths (bytes per
    /// virtual ms). `compression` divides virtual milliseconds into wall
    /// microseconds·1000/compression — e.g. `compression = 1000` turns a
    /// 960 ms virtual transfer into ~1 ms of wall sleep.
    ///
    /// # Panics
    /// Panics if `bandwidth.len() != n` or `compression <= 0`.
    pub fn spawn(n: usize, bandwidth: Vec<f64>, compression: f64) -> Self {
        Self::spawn_with_faults(n, bandwidth, compression, FaultPlan::disabled())
    }

    /// Like [`ThrottledNetwork::spawn`], but each upload additionally runs
    /// through `plan`: dropped transmissions still pay their upload sleep
    /// (the sender's NIC drained before the packet was lost) and the plan's
    /// delay jitter stretches the transfer, so fault-induced latency shows
    /// up in arrival times, not just in missing deliveries.
    ///
    /// # Panics
    /// Panics if `bandwidth.len() != n` or `compression <= 0`.
    pub fn spawn_with_faults(
        n: usize,
        bandwidth: Vec<f64>,
        compression: f64,
        plan: FaultPlan,
    ) -> Self {
        assert_eq!(bandwidth.len(), n, "one bandwidth per peer");
        assert!(compression > 0.0);
        let (delivery_tx, deliveries) = unbounded();
        let drops = Arc::new(AtomicU64::new(0));
        let mut senders = Vec::with_capacity(n);
        let mut receivers: Vec<Receiver<Msg>> = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(rx);
        }
        let mut handles = Vec::with_capacity(n);
        for (id, rx) in receivers.into_iter().enumerate() {
            let peers = senders.clone();
            let delivery_tx = delivery_tx.clone();
            let drop_count = drops.clone();
            // selint: allow(panic-path, constructor not delivery; lengths asserted equal above)
            let bw = bandwidth[id];
            let id = to_u32(id, "peer id");
            handles.push(std::thread::spawn(move || {
                let mut seen = std::collections::HashSet::new();
                while let Ok(msg) = rx.recv() {
                    match msg {
                        Msg::Payload {
                            pub_id,
                            bytes,
                            children,
                            trace,
                        } => {
                            if !seen.insert(pub_id) {
                                continue;
                            }
                            // Echo the delivery context verbatim (the
                            // ack convention all runtimes share — the
                            // driver derives this peer's span from it);
                            // forwards are re-stamped one hop deeper.
                            let fwd_trace =
                                trace.map(|ctx| ctx.child_of(span_id(ctx.trace_id, id)));
                            let _ = delivery_tx.send((pub_id, id, bytes, Instant::now(), trace));
                            if let Some(kids) = children_for(&children, id) {
                                // Child lists are built from the sorted
                                // edges() and stay ascending.
                                let per_upload = transfer_time(bytes, bw) / compression;
                                for &c in kids {
                                    // Serialized upload: sleep before *each*
                                    // child's send, like one NIC draining.
                                    // Fault jitter stretches the transfer
                                    // (compressed on the same scale).
                                    let jitter = plan.delay_ms(pub_id, 0, id, c) / compression;
                                    std::thread::sleep(Duration::from_secs_f64(
                                        ((per_upload + jitter) / 1_000.0).max(0.0),
                                    ));
                                    if plan.drops(pub_id, 0, id, c) {
                                        // The upload time was spent, but the
                                        // packet is lost on the wire. (Not
                                        // frame_fate: here a drop still pays
                                        // its upload sleep.)
                                        drop_count.fetch_add(1, Ordering::Relaxed);
                                        continue;
                                    }
                                    let Some(tx) = peers.get(c as usize) else {
                                        continue; // malformed tree edge
                                    };
                                    let _ = tx.send(Msg::Payload {
                                        pub_id,
                                        bytes,
                                        children: children.clone(),
                                        trace: fwd_trace,
                                    });
                                }
                            }
                        }
                        Msg::Stop => break,
                    }
                }
            }));
        }
        ThrottledNetwork {
            senders,
            handles,
            deliveries,
            next_pub_id: 1,
            drops,
            stats: TransportStats::new(),
            tracing: false,
            epoch: Instant::now(),
            spans: Vec::new(),
        }
    }

    /// Number of peers.
    pub fn len(&self) -> usize {
        self.senders.len()
    }

    /// True if no peers were spawned.
    pub fn is_empty(&self) -> bool {
        self.senders.is_empty()
    }

    /// Publishes a virtual payload of `bytes` along `tree`, blocking until
    /// every tree node received it or `timeout` elapsed.
    pub fn publish(
        &mut self,
        tree: &RoutingTree,
        bytes: u64,
        timeout: Duration,
    ) -> TimedPublishResult {
        let pub_id = self.next_pub_id;
        self.next_pub_id += 1;
        // edges() is sorted, so each node serializes its uploads to children
        // in a stable ascending order (the recorded per-delivery elapsed
        // times depend on it).
        let children = children_of(tree);
        let expect = children
            .iter()
            .flat_map(|(_, kids)| kids.iter())
            .filter(|&&v| v != tree.publisher)
            .count();
        let start = Instant::now();
        let mut result = TimedPublishResult::default();
        // A publisher outside this runtime (or one already shut down)
        // delivers nothing rather than panicking mid-delivery.
        let seeded = self.senders.get(tree.publisher as usize).map(|tx| {
            tx.send(Msg::Payload {
                pub_id,
                bytes,
                children: Arc::new(children),
                trace: self.tracing.then(|| TraceContext::root(pub_id)),
            })
        });
        if !matches!(seeded, Some(Ok(()))) {
            return result;
        }
        let deadline = start + timeout;
        let mut got = std::collections::HashSet::new();
        while got.len() < expect {
            let remaining = deadline.saturating_duration_since(Instant::now());
            match self.deliveries.recv_timeout(remaining) {
                Ok((id, peer, _bytes, at, _trace)) if id == pub_id && peer != tree.publisher => {
                    if got.insert(peer) {
                        result.deliveries.push(TimedDelivery {
                            peer,
                            elapsed: at.saturating_duration_since(start),
                        });
                    }
                }
                Ok(_) => {}
                Err(_) => break,
            }
        }
        result.deliveries.sort_by_key(|d| d.elapsed);
        result
    }

    /// Stops every actor and joins the threads. Idempotent: calling it
    /// again (or dropping the network afterwards) is a no-op.
    pub fn shutdown(&mut self) {
        if self.handles.is_empty() {
            return;
        }
        for tx in &self.senders {
            let _ = tx.send(Msg::Stop);
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for ThrottledNetwork {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl Transport for ThrottledNetwork {
    fn len(&self) -> usize {
        ThrottledNetwork::len(self)
    }

    /// Maps the wire vocabulary onto the throttle's virtual-size messages:
    /// a [`WireMsg::Publish`] becomes a payload whose *size* is the real
    /// payload's length (the throttle models the transfer, not the copy),
    /// and [`WireMsg::Shutdown`] stops the actor. Other frames have no
    /// throttled meaning and are refused.
    fn send_to(&mut self, to: u32, msg: WireMsg) -> bool {
        let Some(tx) = self.senders.get(to as usize) else {
            return false;
        };
        // Frame sizes are what the message *would* cost on the wire: the
        // throttle never encodes, but the telemetry stays comparable.
        let (tag, frame_bytes) = (msg.tag(), encoded_frame_len(&msg));
        match msg {
            WireMsg::Publish {
                pub_id,
                children,
                payload,
                trace,
                ..
            } => {
                let ok = tx
                    .send(Msg::Payload {
                        pub_id,
                        bytes: payload.len() as u64,
                        children,
                        trace,
                    })
                    .is_ok();
                if ok {
                    self.stats.record_tx(tag, frame_bytes);
                }
                ok
            }
            WireMsg::Shutdown => {
                let ok = tx.send(Msg::Stop).is_ok();
                if ok {
                    self.stats.record_tx(tag, frame_bytes);
                }
                ok
            }
            // Control-plane frames have no throttled meaning: the throttle
            // models upload contention for payload dissemination only. The
            // refusal list is spelled out (no `_`) so a new wire tag fails
            // to compile until this runtime decides what to do with it.
            WireMsg::Join { .. }
            | WireMsg::ExchangeRt { .. }
            | WireMsg::ExchangeReply { .. }
            | WireMsg::Probe { .. }
            | WireMsg::ProbeReply { .. }
            | WireMsg::Ack { .. } => false,
        }
    }

    fn recv_event(&mut self, timeout: Duration) -> Option<WireMsg> {
        let (pub_id, peer, bytes, at, trace) = self.deliveries.recv_timeout(timeout).ok()?;
        // Driver-side span materialization from the echoed context, like
        // the threaded runtime — but stamped with the peer thread's
        // delivery time, which on this runtime models the throttled
        // transfer schedule. Attempts are not in the echo: always 0.
        if let Some(ctx) = trace {
            self.spans.push(SpanRecord {
                trace_id: ctx.trace_id,
                span_id: span_id(ctx.trace_id, peer),
                parent_span: ctx.parent_span,
                peer,
                hop: ctx.hop,
                attempt: 0,
                wall_us: at.saturating_duration_since(self.epoch).as_micros() as u64,
            });
        }
        let ack = WireMsg::Ack {
            pub_id,
            peer,
            bytes,
            trace,
        };
        self.stats.record_rx(7, encoded_frame_len(&ack));
        Some(ack)
    }

    fn drops_injected(&self) -> u64 {
        self.drops.load(Ordering::Relaxed)
    }

    fn peer_addr(&self, peer: u32) -> Option<PeerAddr> {
        ((peer as usize) < self.senders.len()).then_some(PeerAddr::InProc(peer))
    }

    fn shutdown(&mut self) {
        ThrottledNetwork::shutdown(self);
    }

    fn stats(&self) -> &TransportStats {
        &self.stats
    }

    fn set_tracing(&mut self, on: bool) {
        self.tracing = on;
    }

    fn tracing(&self) -> bool {
        self.tracing
    }

    fn drain_spans(&mut self) -> Vec<SpanRecord> {
        std::mem::take(&mut self.spans)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timing::TransferSim;

    fn tree(publisher: u32, paths: Vec<Vec<u32>>) -> RoutingTree {
        RoutingTree::from_paths(publisher, paths)
    }

    /// 1.2 MB at 1200 B/ms = 1000 virtual ms; compression 100 → 10 ms wall.
    const BYTES: u64 = 1_200_000;
    const BW: f64 = 1_200.0;
    const COMPRESSION: f64 = 100.0;

    #[test]
    fn star_children_arrive_serialized() {
        let mut net = ThrottledNetwork::spawn(5, vec![BW; 5], COMPRESSION);
        let t = tree(0, vec![vec![0, 1], vec![0, 2], vec![0, 3], vec![0, 4]]);
        let r = net.publish(&t, BYTES, Duration::from_secs(10));
        assert_eq!(r.deliveries.len(), 4);
        // Children are served in id order; arrival times must be strictly
        // increasing with roughly one upload gap between consecutive ones.
        let arrivals: Vec<Duration> = (1..=4).map(|p| r.arrival_of(p).unwrap()).collect();
        for w in arrivals.windows(2) {
            assert!(w[1] > w[0], "uploads must serialize: {arrivals:?}");
        }
        // Last child waited ≈ 4 uploads ≈ 40 ms; allow generous jitter.
        assert!(arrivals[3] >= Duration::from_millis(25), "{arrivals:?}");
        net.shutdown();
    }

    #[test]
    fn chain_accumulates_latency() {
        let mut net = ThrottledNetwork::spawn(4, vec![BW; 4], COMPRESSION);
        let t = tree(0, vec![vec![0, 1, 2, 3]]);
        let r = net.publish(&t, BYTES, Duration::from_secs(10));
        let a1 = r.arrival_of(1).unwrap();
        let a2 = r.arrival_of(2).unwrap();
        let a3 = r.arrival_of(3).unwrap();
        assert!(a1 < a2 && a2 < a3, "store-and-forward order violated");
        net.shutdown();
    }

    #[test]
    fn agrees_with_transfer_sim_on_arrival_order() {
        // Heterogeneous bandwidths: a slow hub (peer 1) delays its subtree.
        let bandwidth = vec![2_000.0, 300.0, 2_000.0, 2_000.0, 2_000.0];
        let t = tree(0, vec![vec![0, 1, 3], vec![0, 2], vec![0, 1, 4]]);

        let sim = TransferSim::with_bandwidths(bandwidth.clone(), 7);
        let predicted = sim.simulate(&t);

        let mut net = ThrottledNetwork::spawn(5, bandwidth, COMPRESSION);
        let r = net.publish(&t, BYTES, Duration::from_secs(20));
        net.shutdown();

        // Fast direct child 2 must beat the slow hub's children in both the
        // model and reality.
        assert!(predicted.arrival[&2] < predicted.arrival[&3]);
        assert!(r.arrival_of(2).unwrap() < r.arrival_of(3).unwrap());
        assert!(predicted.arrival[&2] < predicted.arrival[&4]);
        assert!(r.arrival_of(2).unwrap() < r.arrival_of(4).unwrap());
    }

    #[test]
    fn faster_hub_finishes_sooner() {
        let t = tree(0, vec![vec![0, 1], vec![0, 2], vec![0, 3]]);
        let run = |bw: f64| {
            let mut net = ThrottledNetwork::spawn(4, vec![bw; 4], COMPRESSION);
            let r = net.publish(&t, BYTES, Duration::from_secs(10));
            net.shutdown();
            r.max_latency()
        };
        let slow = run(600.0);
        let fast = run(2_400.0);
        assert!(
            fast < slow,
            "4× bandwidth should finish faster: {fast:?} vs {slow:?}"
        );
    }

    #[test]
    fn drops_truncate_the_lossy_subtree() {
        // Star 0 -> {1..=6}: deliveries must be exactly the children whose
        // (pub 1, attempt 0) link survives the plan — computed up front, so
        // the threaded run is checked against the deterministic oracle.
        let plan = FaultPlan::seeded(9).with_drop_prob(0.5);
        let survivors: Vec<u32> = (1..=6u32).filter(|&c| !plan.drops(1, 0, 0, c)).collect();
        assert!(
            !survivors.is_empty() && survivors.len() < 6,
            "seed 9 should mix outcomes (survivors {survivors:?})"
        );
        let mut net = ThrottledNetwork::spawn_with_faults(7, vec![BW; 7], COMPRESSION, plan);
        let paths: Vec<Vec<u32>> = (1..=6u32).map(|c| vec![0, c]).collect();
        let r = net.publish(&tree(0, paths), BYTES, Duration::from_millis(900));
        net.shutdown();
        let mut got: Vec<u32> = r.deliveries.iter().map(|d| d.peer).collect();
        got.sort_unstable();
        assert_eq!(got, survivors);
    }

    #[test]
    fn latency_histogram_reads_in_virtual_ms() {
        let mut net = ThrottledNetwork::spawn(3, vec![BW; 3], COMPRESSION);
        let r = net.publish(
            &tree(0, vec![vec![0, 1, 2]]),
            BYTES,
            Duration::from_secs(10),
        );
        net.shutdown();
        let h = r.latency_histogram(COMPRESSION);
        assert_eq!(h.count(), 2);
        // Each hop is a 1000 virtual-ms transfer; the second arrival must
        // read at least one full transfer later than the first.
        assert!(
            h.min() >= 900,
            "first hop ≈ 1000 virtual ms, got {}",
            h.min()
        );
        assert!(h.max() >= h.min() + 900, "chain accumulates transfers");
    }

    #[test]
    fn empty_tree_is_instant() {
        let mut net = ThrottledNetwork::spawn(2, vec![BW; 2], COMPRESSION);
        let r = net.publish(&tree(0, vec![]), BYTES, Duration::from_millis(100));
        assert!(r.deliveries.is_empty());
        assert_eq!(r.max_latency(), Duration::ZERO);
        net.shutdown();
    }
}
