//! # osn-net — the "realistic experiments" runtime
//!
//! The paper's realistic evaluation (§IV-D) ran browser peers over WebRTC on
//! 18 VMs, sending 1.2 MB payloads with per-peer bandwidth heterogeneity and
//! per-link latency. This crate substitutes that testbed with two layers that
//! exercise the same code paths (see DESIGN.md §3):
//!
//! * [`timing`] — a deterministic virtual-time transfer simulator:
//!   store-and-forward dissemination over a routing tree where each peer's
//!   uploads are **serialized** (the star experiment's linear law) and every
//!   link carries its own propagation latency. This produces the Fig. 7
//!   latency series.
//! * [`runtime`] — a real concurrent actor runtime: one OS thread per peer,
//!   crossbeam channels as links, `bytes::Bytes` payloads forwarded along
//!   the dissemination tree. It demonstrates the protocol actually running
//!   as message-passing peers and is used by the realistic integration
//!   tests and the `realistic_run` example.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod runtime;
pub mod throttled;
pub mod timing;

pub use runtime::{PublishResult, ThreadedNetwork};
pub use throttled::{ThrottledNetwork, TimedPublishResult};
pub use timing::{DisseminationTiming, TransferSim};
