//! # osn-net — the "realistic experiments" runtime
//!
//! The paper's realistic evaluation (§IV-D) ran browser peers over WebRTC on
//! 18 VMs, sending 1.2 MB payloads with per-peer bandwidth heterogeneity and
//! per-link latency. This crate substitutes that testbed with a layered
//! network stack that exercises the same code paths (see DESIGN.md §3, §12):
//!
//! * [`timing`] — a deterministic virtual-time transfer simulator:
//!   store-and-forward dissemination over a routing tree where each peer's
//!   uploads are **serialized** (the star experiment's linear law) and every
//!   link carries its own propagation latency. This produces the Fig. 7
//!   latency series.
//! * [`transport`] — the [`Transport`] trait every runtime implements, plus
//!   [`publish_over`]: the ack-window/retransmission loop written once,
//!   generically, so retry policy cannot drift between transports.
//! * [`runtime`] — the **reference transport**: one OS thread per peer,
//!   crossbeam channels as links, [`select_core::WireMsg`] as the
//!   vocabulary, `bytes::Bytes` payloads forwarded along the dissemination
//!   tree. Deterministic and fast; the baseline conformance replays
//!   against.
//! * [`codec`] — the dependency-free binary framing of `WireMsg`
//!   (length-prefixed little-endian, magic + version header); decoding is
//!   total and panic-free.
//! * [`socket`] — the same protocol over real loopback TCP: each peer a
//!   thread owning a `TcpListener`, every message a codec frame, the fault
//!   plan applied at the socket boundary. The `wire_conformance`
//!   integration test pins its delivery sets to the in-process reference
//!   under identical seeds.
//! * [`throttled`] — the runtime with modelled upload bandwidth: forwards
//!   cost real wall-clock time, validating [`timing`]'s predictions.
//! * [`stats`] — per-transport wire telemetry ([`TransportStats`]):
//!   frame/byte counters per tag, retransmissions, reconnects, garbage
//!   frames; snapshots merge into the obs layer's Prometheus export.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod runtime;
pub mod socket;
pub mod stats;
pub mod throttled;
pub mod timing;
pub mod transport;

pub use runtime::ThreadedNetwork;
pub use socket::SocketNetwork;
pub use stats::{StatsSnapshot, TransportStats};
pub use throttled::{ThrottledNetwork, TimedPublishResult};
pub use timing::{DisseminationTiming, TransferSim};
pub use transport::{publish_over, PeerAddr, PublishResult, Transport};
