//! TCP loopback socket transport: the wire format on real sockets.
//!
//! [`SocketNetwork`] runs the same peer-actor protocol as
//! [`crate::runtime::ThreadedNetwork`], but every link is a real TCP
//! connection on `127.0.0.1` and every message crosses it as a
//! [`crate::codec`] frame. Each peer is one OS thread owning a
//! [`std::net::TcpListener`]:
//!
//! * **Control plane** — at startup every peer opens one persistent stream
//!   to the driver's control listener, announces itself with a
//!   [`WireMsg::Join`] frame, and later writes its acks and probe replies
//!   there. The driver runs one reader thread per control stream, decoding
//!   frames into the event channel that [`crate::transport::publish_over`]
//!   consumes.
//! * **Data plane** — forwards are one-shot connections: connect to the
//!   child's listener, write one frame, close. Peers accept serially and
//!   read each connection to EOF; the dissemination tree is acyclic, so
//!   blocking forwards cannot deadlock.
//!
//! The [`osn_sim::FaultPlan`] is applied **at the transport boundary**,
//! exactly like the in-process runtime: before each peer→child forward the
//! peer draws [`osn_sim::FaultPlan::frame_fate`] — a dropped frame is
//! simply never written to the socket, and delay jitter sleeps before the
//! write (virtual ms compressed to wall µs). Driver injections
//! ([`Transport::send_to`], including retransmissions) draw no fault
//! decision. This keeps delivery sets bit-identical with the in-process
//! reference under the same seed, which the `wire_conformance` integration
//! test pins.
//!
//! A frame that fails to decode (garbage, truncation, bad magic) costs the
//! peer that **connection**, never the peer itself: the stream is dropped
//! and the accept loop continues — and the event is *counted*
//! ([`TransportStats::note_garbage_frame`] /
//! [`TransportStats::note_codec_error_conn`]) rather than silently
//! swallowed, so a hostile or buggy sender shows up in the metrics
//! snapshot.
//!
//! **Telemetry and tracing.** Every frame records tx at its writer and rx
//! at its reader into a shared [`TransportStats`] (frame and byte counts
//! per tag, one-shot reconnects, garbage). Because the kernel schedules
//! real connections, socket counts are best-effort ground truth, not a
//! replayable quantity. When tracing is enabled, peers record a
//! [`SpanRecord`] at first delivery of each traced publish — stamped
//! against a shared epoch — and flush their buffers on exit, where
//! [`Transport::drain_spans`] collects them for cross-peer assembly.

use crate::codec::{encode, encoded_frame_len, read_frame, write_frame};
use crate::stats::TransportStats;
use crate::transport::{publish_over, PeerAddr, PublishResult, Transport};
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};
use osn_graph::ids::to_u32;
use osn_obs::trace::{span_id, SpanRecord};
use osn_sim::{FaultPlan, FrameFate};
use select_core::pubsub::RoutingTree;
use select_core::wire::{children_for, TraceContext, WireMsg};
use std::collections::HashSet;
use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A network of peer actors linked by loopback TCP sockets.
pub struct SocketNetwork {
    peer_addrs: Arc<Vec<SocketAddr>>,
    peer_handles: Vec<JoinHandle<()>>,
    reader_handles: Vec<JoinHandle<()>>,
    events: Receiver<WireMsg>,
    next_pub_id: u64,
    /// Retransmission waves `publish` may use after the first ack window.
    retry_max: u32,
    drops: Arc<AtomicU64>,
    stats: Arc<TransportStats>,
    tracing: bool,
    spans_rx: Receiver<Vec<SpanRecord>>,
    spans: Vec<SpanRecord>,
}

impl SocketNetwork {
    /// Spawns `n` socket peers on a fault-free network. Fails only if the
    /// OS refuses loopback listeners.
    pub fn spawn(n: usize) -> io::Result<Self> {
        Self::spawn_with_faults(n, FaultPlan::disabled(), 0)
    }

    /// Spawns `n` socket peers whose forwards run through `plan` (see the
    /// module docs for where fault decisions apply); `retry_max` bounds the
    /// ack-driven retransmission waves of [`SocketNetwork::publish`].
    ///
    /// Returns once every peer has connected its control stream and sent
    /// its [`WireMsg::Join`], so the network is fully up — all listeners
    /// bound, all acceptors running — before the first publication.
    pub fn spawn_with_faults(n: usize, plan: FaultPlan, retry_max: u32) -> io::Result<Self> {
        let control = TcpListener::bind(("127.0.0.1", 0))?;
        let control_addr = control.local_addr()?;

        // Bind every peer's listener up front so the address table is
        // complete before any peer thread starts forwarding.
        let mut listeners = Vec::with_capacity(n);
        let mut addrs = Vec::with_capacity(n);
        for _ in 0..n {
            let l = TcpListener::bind(("127.0.0.1", 0))?;
            addrs.push(l.local_addr()?);
            listeners.push(l);
        }
        let peer_addrs = Arc::new(addrs);

        let drops = Arc::new(AtomicU64::new(0));
        let stats = Arc::new(TransportStats::new());
        let (span_tx, spans_rx) = unbounded::<Vec<SpanRecord>>();
        // Span stamps are µs offsets from one shared epoch, so cross-peer
        // deltas are meaningful. Real wall time — socket latency is a
        // measurement here, never a protocol decision.
        // selint: allow(ambient-nondet, span wall stamps; canonical trace trees exclude them)
        let epoch = Instant::now();
        let mut peer_handles = Vec::with_capacity(n);
        for (id, listener) in listeners.into_iter().enumerate() {
            let peer_addrs = peer_addrs.clone();
            let drops = drops.clone();
            let stats = stats.clone();
            let span_tx = span_tx.clone();
            peer_handles.push(std::thread::spawn(move || {
                peer_loop(
                    to_u32(id, "peer id"),
                    listener,
                    control_addr,
                    peer_addrs,
                    plan,
                    drops,
                    stats,
                    span_tx,
                    epoch,
                )
            }));
        }

        // Accept each peer's persistent control stream and hand it to a
        // reader thread that pumps decoded frames into the event channel.
        let (event_tx, events) = unbounded::<WireMsg>();
        let mut reader_handles = Vec::with_capacity(n);
        for _ in 0..n {
            let (stream, _) = control.accept()?;
            let _ = stream.set_nodelay(true);
            let event_tx = event_tx.clone();
            let stats = stats.clone();
            reader_handles.push(std::thread::spawn(move || {
                control_reader(stream, event_tx, stats)
            }));
        }

        let net = SocketNetwork {
            peer_addrs,
            peer_handles,
            reader_handles,
            events,
            next_pub_id: 1,
            retry_max,
            drops,
            stats,
            tracing: false,
            spans_rx,
            spans: Vec::new(),
        };
        // Readiness handshake: every peer announces itself before traffic.
        let mut joined = 0;
        while joined < n {
            match net.events.recv_timeout(Duration::from_secs(10)) {
                Ok(WireMsg::Join { .. }) => joined += 1,
                Ok(_) => {}
                Err(_) => {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        "socket peer failed to join",
                    ))
                }
            }
        }
        Ok(net)
    }

    /// Number of peers.
    pub fn len(&self) -> usize {
        self.peer_addrs.len()
    }

    /// True if no peers were spawned.
    pub fn is_empty(&self) -> bool {
        self.peer_addrs.is_empty()
    }

    /// Publishes `payload` along `tree` over TCP, blocking until every
    /// subscriber acked (or `timeout` elapsed). Same ack-window/retry
    /// semantics as [`crate::runtime::ThreadedNetwork::publish`] — the loop
    /// is literally the same [`crate::transport::publish_over`] driver.
    pub fn publish(
        &mut self,
        tree: &RoutingTree,
        payload: Bytes,
        timeout: Duration,
    ) -> PublishResult {
        let pub_id = self.next_pub_id;
        self.next_pub_id += 1;
        let retry_max = self.retry_max;
        publish_over(self, tree, payload, timeout, retry_max, pub_id)
    }

    /// Probes `peer` for liveness over the wire: one [`WireMsg::Probe`]
    /// frame out, one [`WireMsg::ProbeReply`] back on the control plane.
    pub fn probe(&mut self, peer: u32, nonce: u64, timeout: Duration) -> Option<bool> {
        if !self.send_to(
            peer,
            WireMsg::Probe {
                from: u32::MAX,
                nonce,
                trace: None,
            },
        ) {
            return None;
        }
        // selint: allow(ambient-nondet, real-I/O probe deadline over loopback TCP)
        let deadline = std::time::Instant::now() + timeout;
        loop {
            // selint: allow(ambient-nondet, countdown against the waived deadline above)
            let remaining = deadline.saturating_duration_since(std::time::Instant::now());
            match self.recv_event(remaining) {
                Some(WireMsg::ProbeReply {
                    from,
                    nonce: echoed,
                    online,
                }) if from == peer && echoed == nonce => return Some(online),
                Some(_) => {} // stale ack from an earlier publication
                None => return None,
            }
        }
    }

    /// Stops every peer (a [`WireMsg::Shutdown`] frame each) and joins all
    /// peer and reader threads. Idempotent: calling it again (or dropping
    /// the network afterwards) is a no-op.
    pub fn shutdown(&mut self) {
        if self.peer_handles.is_empty() && self.reader_handles.is_empty() {
            return;
        }
        for &addr in self.peer_addrs.iter() {
            if let Ok(mut s) = TcpStream::connect(addr) {
                self.stats.note_reconnect();
                if write_frame(&mut s, &WireMsg::Shutdown).is_ok() {
                    self.stats
                        .record_tx(8, encoded_frame_len(&WireMsg::Shutdown));
                }
            }
        }
        for h in self.peer_handles.drain(..) {
            let _ = h.join();
        }
        // Peers closed their control streams on exit; the readers see EOF.
        for h in self.reader_handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for SocketNetwork {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl Transport for SocketNetwork {
    fn len(&self) -> usize {
        SocketNetwork::len(self)
    }

    fn send_to(&mut self, to: u32, msg: WireMsg) -> bool {
        let Some(&addr) = self.peer_addrs.get(to as usize) else {
            return false;
        };
        let Ok(mut stream) = TcpStream::connect(addr) else {
            return false;
        };
        let _ = stream.set_nodelay(true);
        self.stats.note_reconnect();
        let (tag, bytes) = (msg.tag(), encoded_frame_len(&msg));
        let ok = write_frame(&mut stream, &msg).is_ok();
        if ok {
            self.stats.record_tx(tag, bytes);
        }
        ok
    }

    fn recv_event(&mut self, timeout: Duration) -> Option<WireMsg> {
        self.events.recv_timeout(timeout).ok()
    }

    fn drops_injected(&self) -> u64 {
        self.drops.load(Ordering::Relaxed)
    }

    fn peer_addr(&self, peer: u32) -> Option<PeerAddr> {
        self.peer_addrs
            .get(peer as usize)
            .map(|&a| PeerAddr::Tcp(a))
    }

    fn shutdown(&mut self) {
        SocketNetwork::shutdown(self);
    }

    fn stats(&self) -> &TransportStats {
        &self.stats
    }

    fn set_tracing(&mut self, on: bool) {
        self.tracing = on;
    }

    fn tracing(&self) -> bool {
        self.tracing
    }

    fn drain_spans(&mut self) -> Vec<SpanRecord> {
        while let Ok(batch) = self.spans_rx.try_recv() {
            self.spans.extend(batch);
        }
        std::mem::take(&mut self.spans)
    }
}

/// One socket peer: a persistent control stream to the driver plus a serial
/// accept loop on its own listener.
#[allow(clippy::too_many_arguments)] // thread entry point: wiring, not an API
fn peer_loop(
    id: u32,
    listener: TcpListener,
    control_addr: SocketAddr,
    peer_addrs: Arc<Vec<SocketAddr>>,
    plan: FaultPlan,
    drops: Arc<AtomicU64>,
    stats: Arc<TransportStats>,
    span_tx: Sender<Vec<SpanRecord>>,
    epoch: Instant,
) {
    let Ok(mut control) = TcpStream::connect(control_addr) else {
        return; // driver is gone; nothing to serve
    };
    let _ = control.set_nodelay(true);
    let join = WireMsg::Join { peer: id };
    if write_frame(&mut control, &join).is_err() {
        return;
    }
    stats.record_tx(1, encoded_frame_len(&join));
    // Publications this peer already handled: duplicate forwards (diamond
    // trees, retransmissions) deliver once, same as the in-process runtime.
    let mut seen: HashSet<u64> = HashSet::new();
    // Spans recorded at first delivery of traced publishes; flushed to the
    // driver when the peer exits, so drain-after-shutdown sees them all.
    let mut spans: Vec<SpanRecord> = Vec::new();
    'serving: loop {
        let Ok((mut conn, _)) = listener.accept() else {
            break; // listener died; stop serving
        };
        loop {
            match read_frame(&mut conn) {
                Ok(Some(msg)) => {
                    stats.record_rx(msg.tag(), encoded_frame_len(&msg));
                    if !handle_frame(
                        id,
                        msg,
                        &mut control,
                        &peer_addrs,
                        &plan,
                        &drops,
                        &stats,
                        &mut seen,
                        &mut spans,
                        epoch,
                    ) {
                        break 'serving;
                    }
                }
                Ok(None) => break, // clean EOF: sender is done, next connection
                Err(_) => {
                    // Garbage frame: count it, drop the connection, keep
                    // serving the peer.
                    stats.note_garbage_frame();
                    stats.note_codec_error_conn();
                    break;
                }
            }
        }
    }
    let _ = span_tx.send(spans);
}

/// Handles one decoded frame on a peer. Returns `false` when the peer
/// should stop serving (a [`WireMsg::Shutdown`] arrived).
#[allow(clippy::too_many_arguments)] // peer-thread plumbing, not an API
fn handle_frame(
    id: u32,
    msg: WireMsg,
    control: &mut TcpStream,
    peer_addrs: &[SocketAddr],
    plan: &FaultPlan,
    drops: &AtomicU64,
    stats: &TransportStats,
    seen: &mut HashSet<u64>,
    spans: &mut Vec<SpanRecord>,
    epoch: Instant,
) -> bool {
    match msg {
        WireMsg::Publish {
            pub_id,
            attempt,
            publisher,
            children,
            payload,
            trace,
        } => {
            if !seen.insert(pub_id) {
                return true;
            }
            // First delivery. When traced, record this peer's span in the
            // thread-local buffer (real per-hop wall stamps and attempts —
            // the in-process runtimes materialize driver-side instead),
            // re-stamp the forwarded `TraceContext` with ourselves as
            // parent, and echo the delivery context verbatim in the ack
            // (the shared ack convention across transports).
            let fwd_trace: Option<TraceContext> = match trace {
                Some(ctx) => {
                    let own = span_id(ctx.trace_id, id);
                    spans.push(SpanRecord {
                        trace_id: ctx.trace_id,
                        span_id: own,
                        parent_span: ctx.parent_span,
                        peer: id,
                        hop: ctx.hop,
                        attempt,
                        wall_us: epoch.elapsed().as_micros() as u64,
                    });
                    Some(ctx.child_of(own))
                }
                None => None,
            };
            let ack = WireMsg::Ack {
                pub_id,
                peer: id,
                bytes: payload.len() as u64,
                trace,
            };
            if write_frame(control, &ack).is_ok() {
                stats.record_tx(7, encoded_frame_len(&ack));
            }
            let Some(kids) = children_for(&children, id) else {
                return true; // leaf: deliver locally, forward nothing
            };
            // Encode the forwarded frame once; every surviving child gets
            // the same bytes.
            let fwd = WireMsg::Publish {
                pub_id,
                attempt,
                publisher,
                children: children.clone(),
                payload: payload.clone(),
                trace: fwd_trace,
            };
            let Ok(frame) = encode(&fwd) else {
                return true; // unencodable (oversized) — cannot forward
            };
            for &c in kids {
                match plan.frame_fate(pub_id, attempt, id, c) {
                    FrameFate::Drop => {
                        // The frame is simply never written to the socket.
                        drops.fetch_add(1, Ordering::Relaxed);
                    }
                    FrameFate::Deliver { delay_ms } => {
                        // Jitter = a delayed write: virtual ms compressed
                        // to wall µs, same scale as the threaded runtime.
                        if delay_ms > 0.0 {
                            std::thread::sleep(Duration::from_micros(delay_ms.ceil() as u64));
                        }
                        let Some(&addr) = peer_addrs.get(c as usize) else {
                            continue; // malformed tree edge: no such peer
                        };
                        if let Ok(mut s) = TcpStream::connect(addr) {
                            let _ = s.set_nodelay(true);
                            stats.note_reconnect();
                            if s.write_all(&frame).is_ok() {
                                stats.record_tx(6, frame.len() as u64);
                            }
                        }
                    }
                }
            }
            true
        }
        WireMsg::Probe {
            from: _,
            nonce,
            trace: _,
        } => {
            let reply = WireMsg::ProbeReply {
                from: id,
                nonce,
                online: true,
            };
            if write_frame(control, &reply).is_ok() {
                stats.record_tx(5, encoded_frame_len(&reply));
            }
            true
        }
        WireMsg::Shutdown => false,
        // Gossip exchange frames route through the superstep engine, and
        // ack/join frames are driver-bound: ignore rather than crash. The
        // list is spelled out (no `_`) so a new wire tag fails to compile
        // until this runtime decides what to do with it.
        WireMsg::ExchangeRt { .. }
        | WireMsg::ExchangeReply { .. }
        | WireMsg::Join { .. }
        | WireMsg::Ack { .. }
        | WireMsg::ProbeReply { .. } => true,
    }
}

/// Pumps one peer's control stream into the driver's event channel until
/// EOF (peer exited) or the channel closes (driver dropped). This is the
/// driver's real read point, so driver-side rx is counted here.
fn control_reader(mut stream: TcpStream, events: Sender<WireMsg>, stats: Arc<TransportStats>) {
    while let Ok(Some(msg)) = read_frame(&mut stream) {
        stats.record_rx(msg.tag(), encoded_frame_len(&msg));
        if events.send(msg).is_err() {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree(publisher: u32, paths: Vec<Vec<u32>>) -> RoutingTree {
        RoutingTree::from_paths(publisher, paths)
    }

    #[test]
    fn payload_reaches_every_tree_node_over_tcp() {
        let mut net = SocketNetwork::spawn(6).unwrap();
        let t = tree(0, vec![vec![0, 1, 2], vec![0, 3], vec![0, 1, 4]]);
        let r = net.publish(&t, Bytes::from(vec![7u8; 1024]), Duration::from_secs(10));
        assert_eq!(r.delivered_to, HashSet::from([1, 2, 3, 4]));
        assert_eq!(r.bytes_received, 4 * 1024);
        net.shutdown();
    }

    #[test]
    fn paper_scale_payload_crosses_sockets() {
        // The paper's 1.2 MB payload through a chain of real TCP hops.
        let mut net = SocketNetwork::spawn(3).unwrap();
        let t = tree(0, vec![vec![0, 1, 2]]);
        let r = net.publish(
            &t,
            Bytes::from(vec![0u8; 1_200_000]),
            Duration::from_secs(20),
        );
        assert_eq!(r.delivered_to.len(), 2);
        assert_eq!(r.bytes_received, 2 * 1_200_000);
        net.shutdown();
    }

    #[test]
    fn two_hundred_peer_loopback_smoke() {
        // The ci.sh wire-suite smoke: 200 sockets, a two-level fan-out tree
        // (relays 1..=19 each forwarding to 9 leaves), every peer reached.
        let n = 200u32;
        let mut paths = Vec::new();
        for relay in 1..20u32 {
            paths.push(vec![0, relay]);
            for leaf in 0..9u32 {
                paths.push(vec![0, relay, 20 + (relay - 1) * 9 + leaf]);
            }
        }
        let t = tree(0, paths);
        let mut net = SocketNetwork::spawn(n as usize).unwrap();
        let r = net.publish(&t, Bytes::from(vec![3u8; 4096]), Duration::from_secs(30));
        assert_eq!(r.delivered_to, (1..191).collect(), "19 relays + 171 leaves");
        net.shutdown();
    }

    #[test]
    fn fire_and_forget_drops_match_the_plan() {
        // Same deterministic oracle as the in-process runtime: delivery is
        // exactly the set of children whose (pub 1, attempt 0) edge
        // survives the plan. This is the heart of cross-transport
        // conformance.
        let plan = FaultPlan::seeded(42).with_drop_prob(0.4);
        let expected: HashSet<u32> = (1..=8u32).filter(|&c| !plan.drops(1, 0, 0, c)).collect();
        let dropped = 8 - expected.len() as u64;
        let mut net = SocketNetwork::spawn_with_faults(9, plan, 0).unwrap();
        let paths: Vec<Vec<u32>> = (1..=8u32).map(|c| vec![0, c]).collect();
        let r = net.publish(
            &tree(0, paths),
            Bytes::from_static(b"d"),
            Duration::from_millis(800),
        );
        assert_eq!(r.delivered_to, expected);
        assert_eq!(r.drops_injected, dropped);
        net.shutdown();
    }

    #[test]
    fn retries_recover_dropped_subscribers() {
        let plan = FaultPlan::seeded(42).with_drop_prob(0.4);
        let mut net = SocketNetwork::spawn_with_faults(9, plan, 3).unwrap();
        let paths: Vec<Vec<u32>> = (1..=8u32).map(|c| vec![0, c]).collect();
        let r = net.publish(
            &tree(0, paths),
            Bytes::from_static(b"r"),
            Duration::from_secs(4),
        );
        assert_eq!(r.delivered_to.len(), 8, "retries should reach all peers");
        assert!(r.retries > 0);
        net.shutdown();
    }

    #[test]
    fn garbage_on_the_wire_costs_the_connection_not_the_peer() {
        let mut net = SocketNetwork::spawn(3).unwrap();
        let Some(PeerAddr::Tcp(addr)) = net.peer_addr(1) else {
            panic!("peer 1 must have a TCP address");
        };
        // A hostile/buggy client: valid length prefix, garbage body — then
        // a frame claiming more bytes than it carries.
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(&[8, 0, 0, 0, 0xDE, 0xAD, 0xBE, 0xEF, 1, 2, 3, 4])
            .unwrap();
        drop(s);
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(&[255, 0, 0, 0, 1, 2, 3]).unwrap();
        drop(s);
        // The peer must still be serving: a real publication succeeds.
        let t = tree(0, vec![vec![0, 1, 2]]);
        let r = net.publish(&t, Bytes::from_static(b"ok"), Duration::from_secs(10));
        assert_eq!(r.delivered_to, HashSet::from([1, 2]));
        net.shutdown();
        // Both hostile frames were counted, not silently swallowed; each
        // cost its connection.
        let snap = net.stats().snapshot();
        assert_eq!(snap.garbage_frames, 2, "{snap:?}");
        assert_eq!(snap.codec_error_conns, 2, "{snap:?}");
    }

    #[test]
    fn stats_count_frames_on_both_sides_of_the_wire() {
        let mut net = SocketNetwork::spawn(3).unwrap();
        let t = tree(0, vec![vec![0, 1, 2]]);
        let r = net.publish(&t, Bytes::from(vec![9u8; 512]), Duration::from_secs(10));
        assert_eq!(r.delivered_to, HashSet::from([1, 2]));
        net.shutdown();
        let snap = net.stats().snapshot();
        // 1 driver injection + 2 peer forwards (0→1, 1→2).
        assert_eq!(snap.frames_tx[6], 3, "{snap:?}");
        assert_eq!(snap.frames_rx[6], 3, "{snap:?}");
        assert_eq!(snap.bytes_tx[6], snap.bytes_rx[6], "lossless loopback");
        // Every peer joined and acked once; all shutdown frames arrived.
        assert_eq!(snap.frames_tx[1], 3, "{snap:?}");
        assert_eq!(snap.frames_rx[7], 3, "{snap:?}");
        assert_eq!(snap.frames_rx[8], 3, "{snap:?}");
        // Data-plane connects are one-shot: driver inject + 2 forwards +
        // 3 shutdown connects.
        assert_eq!(snap.reconnects, 6, "{snap:?}");
        assert_eq!(snap.garbage_frames, 0);
    }

    #[test]
    fn tracing_yields_a_complete_span_chain_over_tcp() {
        let mut net = SocketNetwork::spawn(3).unwrap();
        net.set_tracing(true);
        let t = tree(0, vec![vec![0, 1, 2]]);
        let r = net.publish(&t, Bytes::from_static(b"t"), Duration::from_secs(10));
        assert_eq!(r.delivered_to, HashSet::from([1, 2]));
        net.shutdown();
        let spans = net.drain_spans();
        assert_eq!(spans.len(), 3, "publisher + two hops: {spans:?}");
        let mut asm = osn_obs::TraceAssembler::new();
        asm.absorb(spans);
        // Every delivered peer (and the publisher) has a span whose parent
        // chain reaches the driver root.
        assert!(
            asm.chain_complete(1, &[0, 1, 2]),
            "gaps: {:?}",
            asm.chain_gaps(1, &[0, 1, 2])
        );
        let lat = asm.latency(1);
        assert_eq!(lat.critical_path, vec![0, 1, 2]);
        assert_eq!(lat.max_hop, 2);
    }

    #[test]
    fn probe_round_trips_over_tcp() {
        let mut net = SocketNetwork::spawn(2).unwrap();
        assert_eq!(net.probe(1, 55, Duration::from_secs(5)), Some(true));
        assert_eq!(net.probe(7, 56, Duration::from_millis(50)), None);
        net.shutdown();
    }

    #[test]
    fn shutdown_is_idempotent_and_drop_is_safe() {
        let mut net = SocketNetwork::spawn(3).unwrap();
        let t = tree(0, vec![vec![0, 1]]);
        let r = net.publish(&t, Bytes::from_static(b"s"), Duration::from_secs(5));
        assert_eq!(r.delivered_to, HashSet::from([1]));
        net.shutdown();
        net.shutdown(); // second call must be a no-op
        drop(net);
        let abandoned = SocketNetwork::spawn(2).unwrap();
        drop(abandoned); // never-shut-down network joins cleanly via Drop
    }

    #[test]
    fn peer_addresses_are_loopback_tcp() {
        let net = SocketNetwork::spawn(2).unwrap();
        for p in 0..2 {
            let Some(PeerAddr::Tcp(addr)) = net.peer_addr(p) else {
                panic!("peer {p} must be a TCP address");
            };
            assert!(addr.ip().is_loopback());
        }
        assert_eq!(net.peer_addr(2), None);
    }
}
