//! Binary codec for [`WireMsg`]: the byte format the transports speak.
//!
//! The format is hand-rolled, dependency-free, little-endian, and pinned by
//! bytes — not by any serializer's internals — so two builds of this
//! repository (or a future reimplementation in another language) agree on
//! every frame. Layout (DESIGN.md §12 has the per-message field tables):
//!
//! ```text
//! frame   := [len: u32] body               len = |body|, ≤ MAX_FRAME
//! body    := [magic: u16 = 0x5EC7] [version: u8 = 2] [tag: u8] fields
//! u32/u64 := little-endian
//! vec<u32>:= [count: u32] count × u32
//! bytes   := [count: u32] count raw bytes
//! childmap:= [count: u32] count × ([peer: u32] vec<u32>)
//! bool    := u8, strictly 0 or 1
//! trace   := [present: u8 (0|1)] present=1 ⇒ [trace_id: u64]
//!            [parent_span: u64] [hop: u8]          (v2+, trailing field)
//! ```
//!
//! Decoding is **total**: any byte sequence produces either a message or a
//! [`WireError`], never a panic, and no allocation is sized from an
//! unvalidated count (a claimed length is checked against the bytes that
//! actually remain before anything is reserved). Frames above [`MAX_FRAME`]
//! are rejected before their body is read, so a corrupt length prefix
//! cannot OOM the receiver. Trailing bytes after a well-formed message are
//! an error — a frame means exactly one message.
//!
//! Versioning: `magic` rejects non-SELECT traffic outright; `version` is
//! bumped whenever any message's field layout changes, and decoders reject
//! versions they do not know. Version 2 appended the optional `trace` field
//! to the publish/ack/probe bodies; decoders still accept version-1 frames
//! — the v1 byte layout is an exact prefix of v2's, so they decode
//! losslessly with `trace: None`. Tags are append-only (see
//! [`select_core::wire::WireMsg::tag`]).

use bytes::Bytes;
use select_core::wire::{ChildMap, TraceContext, WireMsg};
use std::io::{Read, Write};
use std::sync::Arc;

/// Frame magic: rejects non-SELECT traffic on a shared port.
pub const MAGIC: u16 = 0x5EC7;

/// Current wire-format version. Bump on any field-layout change.
///
/// v1 → v2: publish/ack/probe bodies gained a trailing optional
/// [`TraceContext`]. Decoders accept both; see [`MIN_WIRE_VERSION`].
pub const WIRE_VERSION: u8 = 2;

/// Oldest wire-format version this codec still decodes. v1 frames carry no
/// trace field and decode with `trace: None`; encoding always emits
/// [`WIRE_VERSION`].
pub const MIN_WIRE_VERSION: u8 = 1;

/// Upper bound on one frame's body, in bytes. Comfortably above the paper's
/// 1.2 MB payload plus any realistic forwarding plan, and small enough that
/// a corrupt length prefix cannot make a receiver allocate unbounded
/// memory.
pub const MAX_FRAME: u32 = 16 * 1024 * 1024;

/// Why a frame failed to decode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireError {
    /// Fewer bytes than a field (or the frame header) requires.
    Truncated,
    /// The length prefix exceeds [`MAX_FRAME`].
    Oversized {
        /// The claimed body length.
        len: u32,
    },
    /// The first two body bytes are not [`MAGIC`].
    BadMagic {
        /// What was read instead.
        got: u16,
    },
    /// Unknown format version.
    BadVersion {
        /// What was read instead.
        got: u8,
    },
    /// Unknown message tag.
    BadTag {
        /// What was read instead.
        got: u8,
    },
    /// A field's value is invalid (non-boolean byte, count that cannot fit
    /// the remaining bytes, unsorted child map, …).
    Malformed(&'static str),
    /// Well-formed message followed by extra bytes in the same frame.
    Trailing {
        /// How many bytes were left over.
        extra: usize,
    },
    /// The underlying reader failed (socket closed mid-frame, …).
    Io(std::io::ErrorKind),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "frame truncated"),
            WireError::Oversized { len } => {
                write!(
                    f,
                    "frame body of {len} bytes exceeds MAX_FRAME ({MAX_FRAME})"
                )
            }
            WireError::BadMagic { got } => write!(f, "bad magic {got:#06x} (want {MAGIC:#06x})"),
            WireError::BadVersion { got } => {
                write!(
                    f,
                    "unknown wire version {got} (speak {MIN_WIRE_VERSION}..={WIRE_VERSION})"
                )
            }
            WireError::BadTag { got } => write!(f, "unknown message tag {got}"),
            WireError::Malformed(what) => write!(f, "malformed field: {what}"),
            WireError::Trailing { extra } => write!(f, "{extra} trailing bytes after message"),
            WireError::Io(kind) => write!(f, "i/o failure: {kind:?}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e.kind())
    }
}

// ---------------------------------------------------------------- encoding

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_vec_u32(out: &mut Vec<u8>, v: &[u32]) {
    // selint: allow(cast-audit, a wrapped length implies a >16GiB body, which encode_into rejects via MAX_FRAME before the frame leaves)
    put_u32(out, v.len() as u32);
    for &x in v {
        put_u32(out, x);
    }
}

/// Appends the optional trace field (v2's trailing `trace` production):
/// a presence byte, then the three context fields when present.
fn put_trace(out: &mut Vec<u8>, trace: &Option<TraceContext>) {
    match trace {
        None => out.push(0),
        Some(t) => {
            out.push(1);
            put_u64(out, t.trace_id);
            put_u64(out, t.parent_span);
            out.push(t.hop);
        }
    }
}

/// Appends the body (magic + version + tag + fields) of `msg` to `out`.
fn encode_body(msg: &WireMsg, out: &mut Vec<u8>) {
    out.extend_from_slice(&MAGIC.to_le_bytes());
    out.push(WIRE_VERSION);
    out.push(msg.tag());
    match msg {
        WireMsg::Join { peer } => put_u32(out, *peer),
        WireMsg::ExchangeRt {
            from,
            position,
            neighbourhood,
            links,
        } => {
            put_u32(out, *from);
            put_u64(out, position.0);
            put_vec_u32(out, neighbourhood);
            put_vec_u32(out, links);
        }
        WireMsg::ExchangeReply {
            from,
            position,
            n_mutual,
            links,
        } => {
            put_u32(out, *from);
            put_u64(out, position.0);
            put_u32(out, *n_mutual);
            put_vec_u32(out, links);
        }
        WireMsg::Probe { from, nonce, trace } => {
            put_u32(out, *from);
            put_u64(out, *nonce);
            put_trace(out, trace);
        }
        WireMsg::ProbeReply {
            from,
            nonce,
            online,
        } => {
            put_u32(out, *from);
            put_u64(out, *nonce);
            out.push(u8::from(*online));
        }
        WireMsg::Publish {
            pub_id,
            attempt,
            publisher,
            children,
            payload,
            trace,
        } => {
            put_u64(out, *pub_id);
            put_u32(out, *attempt);
            put_u32(out, *publisher);
            // selint: allow(cast-audit, child-map size is bounded by the MAX_FRAME check in encode_into)
            put_u32(out, children.len() as u32);
            for (peer, kids) in children.iter() {
                put_u32(out, *peer);
                put_vec_u32(out, kids);
            }
            // selint: allow(cast-audit, payload length is bounded by the MAX_FRAME check in encode_into)
            put_u32(out, payload.len() as u32);
            out.extend_from_slice(payload);
            put_trace(out, trace);
        }
        WireMsg::Ack {
            pub_id,
            peer,
            bytes,
            trace,
        } => {
            put_u64(out, *pub_id);
            put_u32(out, *peer);
            put_u64(out, *bytes);
            put_trace(out, trace);
        }
        WireMsg::Shutdown => {}
    }
}

/// Appends one complete frame (length prefix included) to `out`.
///
/// The format has no message that can legitimately exceed [`MAX_FRAME`];
/// an over-long payload is the caller's bug, reported as an error rather
/// than a corrupt frame on the wire.
pub fn encode_into(msg: &WireMsg, out: &mut Vec<u8>) -> Result<(), WireError> {
    let at = out.len();
    put_u32(out, 0); // patched below
    encode_body(msg, out);
    let body_len = out.len() - at - 4;
    // Saturating for the diagnostic; exact whenever the guard below passes.
    let len32 = u32::try_from(body_len).unwrap_or(u32::MAX);
    if body_len > MAX_FRAME as usize {
        out.truncate(at);
        return Err(WireError::Oversized { len: len32 });
    }
    let len_bytes = len32.to_le_bytes();
    // Patch the placeholder; the slice is guaranteed present (just pushed).
    for (i, b) in len_bytes.iter().enumerate() {
        if let Some(slot) = out.get_mut(at + i) {
            *slot = *b;
        }
    }
    Ok(())
}

/// Encodes `msg` as a standalone frame.
pub fn encode(msg: &WireMsg) -> Result<Vec<u8>, WireError> {
    let mut out = Vec::new();
    encode_into(msg, &mut out)?;
    Ok(out)
}

/// Exact on-the-wire size of `msg`'s frame (length prefix included) at the
/// current [`WIRE_VERSION`], computed arithmetically. Lets the in-process
/// transports account bytes per tag without serializing anything; pinned
/// against [`encode`] by test.
pub fn encoded_frame_len(msg: &WireMsg) -> u64 {
    fn trace_len(trace: &Option<TraceContext>) -> u64 {
        match trace {
            None => 1,
            Some(_) => 1 + 8 + 8 + 1,
        }
    }
    fn vec_len(v: &[u32]) -> u64 {
        4 + 4 * v.len() as u64
    }
    let header = 4 + 2 + 1 + 1; // len prefix, magic, version, tag
    header
        + match msg {
            WireMsg::Join { .. } => 4,
            WireMsg::ExchangeRt {
                neighbourhood,
                links,
                ..
            } => 4 + 8 + vec_len(neighbourhood) + vec_len(links),
            WireMsg::ExchangeReply { links, .. } => 4 + 8 + 4 + vec_len(links),
            WireMsg::Probe { trace, .. } => 4 + 8 + trace_len(trace),
            WireMsg::ProbeReply { .. } => 4 + 8 + 1,
            WireMsg::Publish {
                children,
                payload,
                trace,
                ..
            } => {
                let plan: u64 = children.iter().map(|(_, kids)| 4 + vec_len(kids)).sum();
                8 + 4 + 4 + (4 + plan) + (4 + payload.len() as u64) + trace_len(trace)
            }
            WireMsg::Ack { trace, .. } => 8 + 4 + 8 + trace_len(trace),
            WireMsg::Shutdown => 0,
        }
}

// ---------------------------------------------------------------- decoding

fn take<'a>(buf: &mut &'a [u8], n: usize) -> Result<&'a [u8], WireError> {
    if buf.len() < n {
        return Err(WireError::Truncated);
    }
    let (head, tail) = buf.split_at(n);
    *buf = tail;
    Ok(head)
}

fn get_u16(buf: &mut &[u8]) -> Result<u16, WireError> {
    let b = take(buf, 2)?;
    Ok(u16::from_le_bytes(
        b.try_into().map_err(|_| WireError::Truncated)?,
    ))
}

fn get_u8(buf: &mut &[u8]) -> Result<u8, WireError> {
    let b = take(buf, 1)?;
    b.first().copied().ok_or(WireError::Truncated)
}

fn get_u32(buf: &mut &[u8]) -> Result<u32, WireError> {
    let b = take(buf, 4)?;
    Ok(u32::from_le_bytes(
        b.try_into().map_err(|_| WireError::Truncated)?,
    ))
}

fn get_u64(buf: &mut &[u8]) -> Result<u64, WireError> {
    let b = take(buf, 8)?;
    Ok(u64::from_le_bytes(
        b.try_into().map_err(|_| WireError::Truncated)?,
    ))
}

fn get_bool(buf: &mut &[u8]) -> Result<bool, WireError> {
    match get_u8(buf)? {
        0 => Ok(false),
        1 => Ok(true),
        _ => Err(WireError::Malformed("boolean byte must be 0 or 1")),
    }
}

/// Reads a `vec<u32>`: the claimed count is validated against the bytes
/// that actually remain **before** any allocation, so a hostile count
/// cannot reserve gigabytes.
fn get_vec_u32(buf: &mut &[u8]) -> Result<Vec<u32>, WireError> {
    let count = get_u32(buf)? as usize;
    if buf.len() / 4 < count {
        return Err(WireError::Malformed("u32 list count exceeds frame"));
    }
    let mut v = Vec::with_capacity(count);
    for _ in 0..count {
        v.push(get_u32(buf)?);
    }
    Ok(v)
}

fn get_bytes(buf: &mut &[u8]) -> Result<Bytes, WireError> {
    let count = get_u32(buf)? as usize;
    if buf.len() < count {
        return Err(WireError::Malformed("byte-string count exceeds frame"));
    }
    Ok(Bytes::from(take(buf, count)?.to_vec()))
}

/// Reads the optional trace field. Version-1 frames predate the field
/// entirely: nothing is consumed and the message decodes with
/// `trace: None`, which is exactly what a v1 sender meant.
fn get_trace(buf: &mut &[u8], version: u8) -> Result<Option<TraceContext>, WireError> {
    if version < 2 {
        return Ok(None);
    }
    match get_u8(buf)? {
        0 => Ok(None),
        1 => Ok(Some(TraceContext {
            trace_id: get_u64(buf)?,
            parent_span: get_u64(buf)?,
            hop: get_u8(buf)?,
        })),
        _ => Err(WireError::Malformed("trace presence byte must be 0 or 1")),
    }
}

fn get_child_map(buf: &mut &[u8]) -> Result<ChildMap, WireError> {
    let count = get_u32(buf)? as usize;
    // Each entry is at least 8 bytes (peer + empty child list).
    if buf.len() / 8 < count {
        return Err(WireError::Malformed("child-map count exceeds frame"));
    }
    let mut map: ChildMap = Vec::with_capacity(count);
    for _ in 0..count {
        let peer = get_u32(buf)?;
        if map.last().is_some_and(|(p, _)| *p >= peer) {
            return Err(WireError::Malformed("child map must be sorted by peer"));
        }
        map.push((peer, get_vec_u32(buf)?));
    }
    Ok(map)
}

/// Decodes one frame body (everything after the length prefix).
fn decode_body(mut buf: &[u8]) -> Result<WireMsg, WireError> {
    let magic = get_u16(&mut buf)?;
    if magic != MAGIC {
        return Err(WireError::BadMagic { got: magic });
    }
    let version = get_u8(&mut buf)?;
    if !(MIN_WIRE_VERSION..=WIRE_VERSION).contains(&version) {
        return Err(WireError::BadVersion { got: version });
    }
    let tag = get_u8(&mut buf)?;
    let msg = match tag {
        1 => WireMsg::Join {
            peer: get_u32(&mut buf)?,
        },
        2 => WireMsg::ExchangeRt {
            from: get_u32(&mut buf)?,
            position: osn_overlay::RingId(get_u64(&mut buf)?),
            neighbourhood: get_vec_u32(&mut buf)?,
            links: get_vec_u32(&mut buf)?,
        },
        3 => WireMsg::ExchangeReply {
            from: get_u32(&mut buf)?,
            position: osn_overlay::RingId(get_u64(&mut buf)?),
            n_mutual: get_u32(&mut buf)?,
            links: get_vec_u32(&mut buf)?,
        },
        4 => WireMsg::Probe {
            from: get_u32(&mut buf)?,
            nonce: get_u64(&mut buf)?,
            trace: get_trace(&mut buf, version)?,
        },
        5 => WireMsg::ProbeReply {
            from: get_u32(&mut buf)?,
            nonce: get_u64(&mut buf)?,
            online: get_bool(&mut buf)?,
        },
        6 => WireMsg::Publish {
            pub_id: get_u64(&mut buf)?,
            attempt: get_u32(&mut buf)?,
            publisher: get_u32(&mut buf)?,
            children: Arc::new(get_child_map(&mut buf)?),
            payload: get_bytes(&mut buf)?,
            trace: get_trace(&mut buf, version)?,
        },
        7 => WireMsg::Ack {
            pub_id: get_u64(&mut buf)?,
            peer: get_u32(&mut buf)?,
            bytes: get_u64(&mut buf)?,
            trace: get_trace(&mut buf, version)?,
        },
        8 => WireMsg::Shutdown,
        other => return Err(WireError::BadTag { got: other }),
    };
    if !buf.is_empty() {
        return Err(WireError::Trailing { extra: buf.len() });
    }
    Ok(msg)
}

/// Decodes one frame from the front of `buf`, returning the message and the
/// total bytes consumed (length prefix included). Never panics: any input —
/// truncated, oversized, garbage — yields a [`WireError`].
pub fn decode(buf: &[u8]) -> Result<(WireMsg, usize), WireError> {
    let mut cursor = buf;
    let len = get_u32(&mut cursor)?;
    if len > MAX_FRAME {
        return Err(WireError::Oversized { len });
    }
    let body = take(&mut cursor, len as usize)?;
    Ok((decode_body(body)?, 4 + len as usize))
}

// ----------------------------------------------------------------- streams

/// Writes one frame to `w` (buffered by the caller if throughput matters).
pub fn write_frame(w: &mut impl Write, msg: &WireMsg) -> Result<(), WireError> {
    let frame = encode(msg)?;
    w.write_all(&frame)?;
    Ok(())
}

/// Reads one frame from `r`. Returns `Ok(None)` on clean end-of-stream (EOF
/// exactly at a frame boundary); EOF mid-frame, an oversized length prefix
/// or a malformed body are errors.
pub fn read_frame(r: &mut impl Read) -> Result<Option<WireMsg>, WireError> {
    let mut len_bytes = [0u8; 4];
    let mut filled = 0;
    while filled < len_bytes.len() {
        let n = match r.read(&mut len_bytes[filled..]) {
            Ok(n) => n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        };
        if n == 0 {
            return if filled == 0 {
                Ok(None) // clean EOF between frames
            } else {
                Err(WireError::Truncated)
            };
        }
        filled += n;
    }
    let len = u32::from_le_bytes(len_bytes);
    if len > MAX_FRAME {
        return Err(WireError::Oversized { len });
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    Ok(Some(decode_body(&body)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use osn_overlay::RingId;

    fn sample_msgs() -> Vec<WireMsg> {
        vec![
            WireMsg::Join { peer: 42 },
            WireMsg::ExchangeRt {
                from: 7,
                position: RingId(0xDEAD_BEEF_0123_4567),
                neighbourhood: vec![1, 2, 3],
                links: vec![9, 10],
            },
            WireMsg::ExchangeReply {
                from: 8,
                position: RingId(u64::MAX),
                n_mutual: 5,
                links: vec![],
            },
            WireMsg::Probe {
                from: 3,
                nonce: 99,
                trace: None,
            },
            WireMsg::Probe {
                from: 3,
                nonce: 100,
                trace: Some(TraceContext::root(100)),
            },
            WireMsg::ProbeReply {
                from: 3,
                nonce: 99,
                online: true,
            },
            WireMsg::Publish {
                pub_id: 17,
                attempt: 2,
                publisher: 0,
                children: Arc::new(vec![(0, vec![1, 3]), (1, vec![2, 4])]),
                payload: Bytes::from(vec![0xAB; 1024]),
                trace: None,
            },
            WireMsg::Publish {
                pub_id: 18,
                attempt: 0,
                publisher: 0,
                children: Arc::new(vec![(0, vec![1])]),
                payload: Bytes::from(vec![0xCD; 16]),
                trace: Some(TraceContext {
                    trace_id: 18,
                    parent_span: 0x1234_5678_9ABC_DEF0,
                    hop: 3,
                }),
            },
            WireMsg::Ack {
                pub_id: 17,
                peer: 4,
                bytes: 1024,
                trace: None,
            },
            WireMsg::Ack {
                pub_id: 18,
                peer: 5,
                bytes: 16,
                trace: Some(TraceContext {
                    trace_id: 18,
                    parent_span: u64::MAX,
                    hop: u8::MAX,
                }),
            },
            WireMsg::Shutdown,
        ]
    }

    #[test]
    fn every_variant_round_trips() {
        for msg in sample_msgs() {
            let frame = encode(&msg).unwrap();
            let (back, used) = decode(&frame).unwrap();
            assert_eq!(used, frame.len(), "{msg:?}");
            assert_eq!(back, msg);
        }
    }

    #[test]
    fn frames_concatenate_cleanly() {
        let msgs = sample_msgs();
        let mut stream = Vec::new();
        for m in &msgs {
            encode_into(m, &mut stream).unwrap();
        }
        let mut at = 0;
        for expected in &msgs {
            let (got, used) = decode(&stream[at..]).unwrap();
            assert_eq!(&got, expected);
            at += used;
        }
        assert_eq!(at, stream.len());
    }

    #[test]
    fn header_layout_is_pinned() {
        // The byte layout is the contract: length prefix counts the body,
        // then magic (LE), version, tag.
        let frame = encode(&WireMsg::Join { peer: 0x0102_0304 }).unwrap();
        assert_eq!(frame[0..4], (frame.len() as u32 - 4).to_le_bytes());
        assert_eq!(frame[4..6], MAGIC.to_le_bytes());
        assert_eq!(frame[6], WIRE_VERSION);
        assert_eq!(frame[7], 1); // Join's tag
        assert_eq!(frame[8..12], 0x0102_0304u32.to_le_bytes());
        assert_eq!(frame.len(), 12);
    }

    #[test]
    fn truncation_at_every_length_is_an_error_not_a_panic() {
        for msg in sample_msgs() {
            let frame = encode(&msg).unwrap();
            for cut in 0..frame.len() {
                assert!(
                    decode(&frame[..cut]).is_err(),
                    "{msg:?} truncated to {cut} bytes decoded"
                );
            }
        }
    }

    #[test]
    fn bad_magic_version_tag_are_distinct_errors() {
        let good = encode(&WireMsg::Shutdown).unwrap();
        let mut bad = good.clone();
        bad[4] ^= 0xFF;
        assert!(matches!(decode(&bad), Err(WireError::BadMagic { .. })));
        let mut bad = good.clone();
        bad[6] = 9;
        assert!(matches!(
            decode(&bad),
            Err(WireError::BadVersion { got: 9 })
        ));
        let mut bad = good.clone();
        bad[7] = 200;
        assert!(matches!(decode(&bad), Err(WireError::BadTag { got: 200 })));
    }

    /// Rewrites a v2 frame that carries `trace: None` into the exact bytes
    /// a v1 sender would have produced: version byte 1, no trace field
    /// (v1 publish/ack/probe bodies end one presence byte earlier).
    fn downgrade_to_v1(frame: &[u8], had_trace_byte: bool) -> Vec<u8> {
        let mut v1 = frame.to_vec();
        v1[6] = 1;
        if had_trace_byte {
            assert_eq!(*v1.last().unwrap(), 0, "downgrade needs trace: None");
            v1.pop();
            let len = u32::from_le_bytes(v1[0..4].try_into().unwrap()) - 1;
            v1[0..4].copy_from_slice(&len.to_le_bytes());
        }
        v1
    }

    #[test]
    fn v1_frames_decode_losslessly_under_the_v2_codec() {
        for msg in sample_msgs() {
            let has_trace_field = matches!(
                &msg,
                WireMsg::Probe { .. } | WireMsg::Publish { .. } | WireMsg::Ack { .. }
            );
            let carries_trace = matches!(
                &msg,
                WireMsg::Probe { trace: Some(_), .. }
                    | WireMsg::Publish { trace: Some(_), .. }
                    | WireMsg::Ack { trace: Some(_), .. }
            );
            if carries_trace {
                continue; // no v1 representation exists for traced frames
            }
            let v2 = encode(&msg).unwrap();
            let v1 = downgrade_to_v1(&v2, has_trace_field);
            let (back, used) = decode(&v1).unwrap();
            assert_eq!(used, v1.len(), "{msg:?}");
            assert_eq!(back, msg, "v1 frame must decode to the same message");
        }
    }

    #[test]
    fn version_zero_is_rejected() {
        let mut frame = encode(&WireMsg::Shutdown).unwrap();
        frame[6] = 0;
        assert!(matches!(
            decode(&frame),
            Err(WireError::BadVersion { got: 0 })
        ));
    }

    #[test]
    fn bad_trace_presence_byte_is_malformed() {
        let mut frame = encode(&WireMsg::Ack {
            pub_id: 1,
            peer: 2,
            bytes: 3,
            trace: None,
        })
        .unwrap();
        let last = frame.len() - 1;
        frame[last] = 2; // presence byte must be 0 or 1
        assert!(matches!(decode(&frame), Err(WireError::Malformed(_))));
    }

    #[test]
    fn encoded_frame_len_matches_the_encoder() {
        for msg in sample_msgs() {
            let frame = encode(&msg).unwrap();
            assert_eq!(encoded_frame_len(&msg), frame.len() as u64, "{msg:?}");
        }
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocating() {
        let mut frame = Vec::new();
        put_u32(&mut frame, u32::MAX);
        assert_eq!(decode(&frame), Err(WireError::Oversized { len: u32::MAX }));
    }

    #[test]
    fn hostile_list_count_cannot_reserve_memory() {
        // ExchangeRt whose neighbourhood claims u32::MAX entries but whose
        // frame only carries 4 more bytes: rejected by the remaining-bytes
        // check, never allocated.
        let mut body = Vec::new();
        body.extend_from_slice(&MAGIC.to_le_bytes());
        body.push(WIRE_VERSION);
        body.push(2); // ExchangeRt
        put_u32(&mut body, 1); // from
        put_u64(&mut body, 2); // position
        put_u32(&mut body, u32::MAX); // neighbourhood count
        put_u32(&mut body, 7); // one lonely element
        let mut frame = Vec::new();
        put_u32(&mut frame, body.len() as u32);
        frame.extend_from_slice(&body);
        assert!(matches!(decode(&frame), Err(WireError::Malformed(_))));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut frame = encode(&WireMsg::Probe {
            from: 1,
            nonce: 2,
            trace: None,
        })
        .unwrap();
        // Stretch the declared body length by one and append a stray byte.
        let len = u32::from_le_bytes(frame[0..4].try_into().unwrap()) + 1;
        frame[0..4].copy_from_slice(&len.to_le_bytes());
        frame.push(0x5A);
        assert_eq!(decode(&frame), Err(WireError::Trailing { extra: 1 }));
    }

    #[test]
    fn non_boolean_online_byte_is_malformed() {
        let mut frame = encode(&WireMsg::ProbeReply {
            from: 1,
            nonce: 2,
            online: false,
        })
        .unwrap();
        let last = frame.len() - 1;
        frame[last] = 7;
        assert!(matches!(decode(&frame), Err(WireError::Malformed(_))));
    }

    #[test]
    fn unsorted_child_map_is_rejected() {
        let mut body = Vec::new();
        body.extend_from_slice(&MAGIC.to_le_bytes());
        body.push(WIRE_VERSION);
        body.push(6); // Publish
        put_u64(&mut body, 1); // pub_id
        put_u32(&mut body, 0); // attempt
        put_u32(&mut body, 0); // publisher
        put_u32(&mut body, 2); // two child-map entries, out of order
        put_u32(&mut body, 5);
        put_vec_u32(&mut body, &[6]);
        put_u32(&mut body, 4);
        put_vec_u32(&mut body, &[7]);
        put_u32(&mut body, 0); // payload
        let mut frame = Vec::new();
        put_u32(&mut frame, body.len() as u32);
        frame.extend_from_slice(&body);
        assert!(matches!(decode(&frame), Err(WireError::Malformed(_))));
    }

    #[test]
    fn stream_read_write_round_trip() {
        let msgs = sample_msgs();
        let mut stream = Vec::new();
        for m in &msgs {
            write_frame(&mut stream, m).unwrap();
        }
        let mut r = &stream[..];
        for expected in &msgs {
            let got = read_frame(&mut r).unwrap().unwrap();
            assert_eq!(&got, expected);
        }
        assert_eq!(read_frame(&mut r).unwrap(), None, "clean EOF");
    }

    #[test]
    fn mid_frame_eof_is_an_error() {
        let frame = encode(&WireMsg::Join { peer: 1 }).unwrap();
        let mut r = &frame[..frame.len() - 2];
        assert!(read_frame(&mut r).is_err());
    }
}
