//! Per-transport wire telemetry: frame/byte counters per tag, plus the
//! pathologies the delivery loop and the socket runtime can observe
//! (retransmissions, ack-window expiries, reconnects, garbage frames).
//!
//! One [`TransportStats`] is shared (via `Arc`) between a network's driver
//! handle and its peer threads. Counters are relaxed atomics: on the
//! in-process transports every count is a pure function of the seeded
//! plan, so totals are deterministic and thread-invariant (sums of
//! commutative increments); on the socket transport the kernel schedules
//! real connections, so the counts are best-effort ground truth rather
//! than a replayable quantity.
//!
//! A frozen [`StatsSnapshot`] merges into the obs layer's
//! [`MetricsSnapshot`] as one gauge family per counter — the exporter has
//! no label support, so tag names are baked into metric names
//! (`select_wire_frames_tx_publish`, …).

use osn_obs::MetricsSnapshot;
use select_core::wire::tag_name;
use std::sync::atomic::{AtomicU64, Ordering};

/// Counter slots: tags 1–8 count in their own slot, anything else (only
/// possible on a hostile rx path) in slot 0.
const TAG_SLOTS: usize = 9;

fn slot(tag: u8) -> usize {
    if (1..=8).contains(&tag) {
        tag as usize
    } else {
        0
    }
}

/// Live wire-telemetry counters for one transport instance.
#[derive(Debug, Default)]
pub struct TransportStats {
    frames_tx: [AtomicU64; TAG_SLOTS],
    bytes_tx: [AtomicU64; TAG_SLOTS],
    frames_rx: [AtomicU64; TAG_SLOTS],
    bytes_rx: [AtomicU64; TAG_SLOTS],
    retransmissions: AtomicU64,
    ack_window_expiries: AtomicU64,
    reconnects: AtomicU64,
    garbage_frames: AtomicU64,
    codec_error_conns: AtomicU64,
}

impl TransportStats {
    /// Fresh, all-zero counters.
    pub fn new() -> Self {
        TransportStats::default()
    }

    /// One frame of `bytes` wire bytes sent with `tag`.
    pub fn record_tx(&self, tag: u8, bytes: u64) {
        let s = slot(tag);
        if let Some(c) = self.frames_tx.get(s) {
            c.fetch_add(1, Ordering::Relaxed);
        }
        if let Some(c) = self.bytes_tx.get(s) {
            c.fetch_add(bytes, Ordering::Relaxed);
        }
    }

    /// One frame of `bytes` wire bytes received with `tag`.
    pub fn record_rx(&self, tag: u8, bytes: u64) {
        let s = slot(tag);
        if let Some(c) = self.frames_rx.get(s) {
            c.fetch_add(1, Ordering::Relaxed);
        }
        if let Some(c) = self.bytes_rx.get(s) {
            c.fetch_add(bytes, Ordering::Relaxed);
        }
    }

    /// One publish frame re-sent by the ack/retry loop.
    pub fn note_retransmission(&self) {
        self.retransmissions.fetch_add(1, Ordering::Relaxed);
    }

    /// One ack window that closed with subscribers still unreached.
    pub fn note_ack_window_expiry(&self) {
        self.ack_window_expiries.fetch_add(1, Ordering::Relaxed);
    }

    /// One fresh connection where a session could have been reused — the
    /// socket runtime's one-shot data-plane connects (ROADMAP item 3's
    /// open cost, now measured). Always 0 in-process.
    pub fn note_reconnect(&self) {
        self.reconnects.fetch_add(1, Ordering::Relaxed);
    }

    /// One frame that failed to decode (bad magic/version/tag, malformed
    /// body, truncation mid-stream).
    pub fn note_garbage_frame(&self) {
        self.garbage_frames.fetch_add(1, Ordering::Relaxed);
    }

    /// One connection dropped because of a codec error on its stream.
    pub fn note_codec_error_conn(&self) {
        self.codec_error_conns.fetch_add(1, Ordering::Relaxed);
    }

    /// Freezes the counters into a plain snapshot.
    pub fn snapshot(&self) -> StatsSnapshot {
        let load = |a: &[AtomicU64; TAG_SLOTS]| {
            let mut out = [0u64; TAG_SLOTS];
            for (o, c) in out.iter_mut().zip(a.iter()) {
                *o = c.load(Ordering::Relaxed);
            }
            out
        };
        StatsSnapshot {
            frames_tx: load(&self.frames_tx),
            bytes_tx: load(&self.bytes_tx),
            frames_rx: load(&self.frames_rx),
            bytes_rx: load(&self.bytes_rx),
            retransmissions: self.retransmissions.load(Ordering::Relaxed),
            ack_window_expiries: self.ack_window_expiries.load(Ordering::Relaxed),
            reconnects: self.reconnects.load(Ordering::Relaxed),
            garbage_frames: self.garbage_frames.load(Ordering::Relaxed),
            codec_error_conns: self.codec_error_conns.load(Ordering::Relaxed),
        }
    }
}

/// A frozen copy of one transport's counters. Index arrays by wire tag
/// (slot 0 holds unknown-tag traffic).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Frames sent, per tag.
    pub frames_tx: [u64; TAG_SLOTS],
    /// Wire bytes sent, per tag.
    pub bytes_tx: [u64; TAG_SLOTS],
    /// Frames received, per tag.
    pub frames_rx: [u64; TAG_SLOTS],
    /// Wire bytes received, per tag.
    pub bytes_rx: [u64; TAG_SLOTS],
    /// Publish frames re-sent by the ack/retry loop.
    pub retransmissions: u64,
    /// Ack windows that closed with unreached subscribers.
    pub ack_window_expiries: u64,
    /// One-shot data-plane connections opened.
    pub reconnects: u64,
    /// Frames that failed to decode.
    pub garbage_frames: u64,
    /// Connections dropped on a codec error.
    pub codec_error_conns: u64,
}

impl StatsSnapshot {
    /// Total frames sent across all tags.
    pub fn total_frames_tx(&self) -> u64 {
        self.frames_tx.iter().sum()
    }

    /// Total frames received across all tags.
    pub fn total_frames_rx(&self) -> u64 {
        self.frames_rx.iter().sum()
    }

    /// Total wire bytes sent across all tags.
    pub fn total_bytes_tx(&self) -> u64 {
        self.bytes_tx.iter().sum()
    }

    /// Total wire bytes received across all tags.
    pub fn total_bytes_rx(&self) -> u64 {
        self.bytes_rx.iter().sum()
    }

    /// Per-tag rows `(tag, name, frames_tx, bytes_tx, frames_rx,
    /// bytes_rx)` for tags with any traffic, ascending by tag (slot 0
    /// last, named "unknown").
    pub fn per_tag(&self) -> Vec<(u8, &'static str, u64, u64, u64, u64)> {
        let mut rows = Vec::new();
        for tag in (1u8..=8).chain([0]) {
            let s = slot(tag);
            let row = (
                tag,
                tag_name(tag),
                self.frames_tx[s],
                self.bytes_tx[s],
                self.frames_rx[s],
                self.bytes_rx[s],
            );
            if row.2 != 0 || row.3 != 0 || row.4 != 0 || row.5 != 0 {
                rows.push(row);
            }
        }
        rows
    }

    /// Merges these counters into `snap` as gauge families prefixed
    /// `select_wire_` and suffixed `_<transport>` (e.g.
    /// `select_wire_frames_tx_publish_tcp`): four per-tag families for
    /// tags with traffic, then the scalar pathology counters.
    pub fn merge_into(&self, mut snap: MetricsSnapshot, transport: &str) -> MetricsSnapshot {
        for (_, name, ftx, btx, frx, brx) in self.per_tag() {
            snap = snap
                .with_gauge(
                    &format!("select_wire_frames_tx_{name}_{transport}"),
                    ftx as f64,
                )
                .with_gauge(
                    &format!("select_wire_bytes_tx_{name}_{transport}"),
                    btx as f64,
                )
                .with_gauge(
                    &format!("select_wire_frames_rx_{name}_{transport}"),
                    frx as f64,
                )
                .with_gauge(
                    &format!("select_wire_bytes_rx_{name}_{transport}"),
                    brx as f64,
                );
        }
        snap.with_gauge(
            &format!("select_wire_retransmissions_{transport}"),
            self.retransmissions as f64,
        )
        .with_gauge(
            &format!("select_wire_ack_window_expiries_{transport}"),
            self.ack_window_expiries as f64,
        )
        .with_gauge(
            &format!("select_wire_reconnects_{transport}"),
            self.reconnects as f64,
        )
        .with_gauge(
            &format!("select_wire_garbage_frames_{transport}"),
            self.garbage_frames as f64,
        )
        .with_gauge(
            &format!("select_wire_codec_error_conns_{transport}"),
            self.codec_error_conns as f64,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_per_tag() {
        let stats = TransportStats::new();
        stats.record_tx(6, 100);
        stats.record_tx(6, 50);
        stats.record_rx(7, 25);
        stats.record_tx(99, 10); // unknown tag → slot 0
        stats.note_retransmission();
        stats.note_garbage_frame();
        let snap = stats.snapshot();
        assert_eq!(snap.frames_tx[6], 2);
        assert_eq!(snap.bytes_tx[6], 150);
        assert_eq!(snap.frames_rx[7], 1);
        assert_eq!(snap.bytes_rx[7], 25);
        assert_eq!(snap.frames_tx[0], 1, "unknown tag lands in slot 0");
        assert_eq!(snap.retransmissions, 1);
        assert_eq!(snap.garbage_frames, 1);
        assert_eq!(snap.total_frames_tx(), 3);
        assert_eq!(snap.total_bytes_tx(), 160);
        assert_eq!(snap.total_bytes_rx(), 25);
    }

    #[test]
    fn per_tag_rows_skip_silent_tags_and_name_the_rest() {
        let stats = TransportStats::new();
        stats.record_tx(6, 10);
        stats.record_rx(1, 12);
        let rows = stats.snapshot().per_tag();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].1, "join");
        assert_eq!(rows[1].1, "publish");
        assert_eq!(rows[1].2, 1);
        assert_eq!(rows[1].3, 10);
    }

    #[test]
    fn merge_into_emits_prometheus_gauge_families() {
        let stats = TransportStats::new();
        stats.record_tx(6, 4096);
        stats.record_rx(7, 21);
        stats.note_reconnect();
        let snap = stats.snapshot().merge_into(MetricsSnapshot::new(), "tcp");
        let text = snap.to_prometheus();
        assert!(
            text.contains("select_wire_frames_tx_publish_tcp 1"),
            "got: {text}"
        );
        assert!(
            text.contains("select_wire_bytes_tx_publish_tcp 4096"),
            "got: {text}"
        );
        assert!(
            text.contains("select_wire_frames_rx_ack_tcp 1"),
            "got: {text}"
        );
        assert!(text.contains("select_wire_reconnects_tcp 1"), "got: {text}");
        assert!(
            text.contains("select_wire_garbage_frames_tcp 0"),
            "got: {text}"
        );
    }
}
