//! Side-by-side comparison of SELECT against Symphony, Bayeux, Vitis and
//! OMen on the same social graph — the paper's §IV-C in miniature.
//!
//! ```sh
//! cargo run --release --example baseline_comparison
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use select::baselines::{build_system, SystemKind};
use select::graph::prelude::*;
use select::sim::Mean;

fn main() {
    let seed = 17;
    let graph = std::sync::Arc::new(datasets::Dataset::Slashdot.generate_with_nodes(600, seed));
    let n = graph.num_nodes();
    let k = ((n as f64).log2().round() as usize).max(2);
    println!(
        "graph: {} users, avg degree {:.1}, K = {k}\n",
        n,
        metrics::average_degree(&graph)
    );
    println!(
        "{:<10} {:>9} {:>9} {:>13} {:>11} {:>11}",
        "system", "avg hops", "relays", "availability", "iterations", "gini(load)"
    );

    for kind in SystemKind::ALL {
        let sys = build_system(kind, std::sync::Arc::clone(&graph), k, seed);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut hops = Mean::new();
        let mut relays = Mean::new();
        let mut avail = Mean::new();
        let mut load = select::sim::collect::LoadByDegree::new();
        for _ in 0..40 {
            let b = rng.gen_range(0..n as u32);
            if graph.degree(UserId(b)) == 0 {
                continue;
            }
            let r = sys.publish(b);
            if r.delivered > 0 {
                hops.add(r.avg_hops);
                relays.add(r.avg_relays);
            }
            avail.add(r.availability());
            for (peer, count) in r.tree.forwards_per_peer() {
                load.record(graph.degree(UserId(peer)), count);
            }
        }
        println!(
            "{:<10} {:>9.2} {:>9.3} {:>12.1}% {:>11} {:>11.3}",
            kind.name(),
            hops.mean(),
            relays.mean(),
            avail.mean() * 100.0,
            sys.construction_iterations()
                .map_or("-".to_string(), |i| i.to_string()),
            load.gini(),
        );
    }
}
