//! Churn resilience: peers leave and rejoin while notifications keep
//! flowing — the scenario behind the paper's Fig. 6 (100% availability).
//!
//! ```sh
//! cargo run --release --example churn_resilience
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use select::core::{SelectConfig, SelectNetwork};
use select::graph::prelude::*;
use select::sim::{ChurnModel, Mean};

fn main() {
    let seed = 11;
    let graph = std::sync::Arc::new(datasets::Dataset::Slashdot.generate_with_nodes(800, seed));
    let n = graph.num_nodes();
    let mut net = SelectNetwork::bootstrap(
        std::sync::Arc::clone(&graph),
        SelectConfig::default().with_seed(seed),
    );
    net.converge(300);
    // Build CMA trust with a few healthy probe rounds.
    for _ in 0..5 {
        net.probe_round();
    }
    println!("network of {n} peers converged; starting churn storm\n");
    println!("step | departed | online | availability | links replaced");
    println!("-----|----------|--------|--------------|---------------");

    let churn = ChurnModel::default();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut overall = Mean::new();
    for step in 1..=20 {
        let online: Vec<u32> = (0..n as u32).filter(|&p| net.is_peer_online(p)).collect();
        let departed = churn.sample_departing_peers(&mut rng, &online, n);
        for &p in &departed {
            net.set_offline(p);
        }
        let recovery = net.probe_round();

        // Publish from five random online users.
        let mut step_avail = Mean::new();
        for _ in 0..5 {
            let b = loop {
                let b = rng.gen_range(0..n as u32);
                if net.is_peer_online(b) {
                    break b;
                }
            };
            step_avail.add(net.publish(b).availability());
        }
        overall.add(step_avail.mean());
        println!(
            "{step:4} | {:8} | {:6} | {:11.1}% | {:4} ({} kept on CMA trust)",
            departed.len(),
            n - departed.len(),
            step_avail.mean() * 100.0,
            recovery.replaced,
            recovery.kept,
        );

        // Departed peers come back at the end of the step, as in the paper.
        for &p in &departed {
            net.set_online(p);
        }
    }
    println!(
        "\noverall availability under churn: {:.2}%",
        overall.mean() * 100.0
    );
}
