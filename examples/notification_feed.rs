//! A Twitter-like real-time notification feed.
//!
//! Replays the paper's evaluation workload end to end: the network *grows*
//! (users join by invitation at an exponentially decaying rate), the overlay
//! converges, then publishers post at exponential rates weighted by their
//! social degree, and every post is disseminated to the poster's friends.
//!
//! ```sh
//! cargo run --release --example notification_feed
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use select::core::{SelectConfig, SelectNetwork};
use select::graph::prelude::*;
use select::sim::{Mean, PublishWorkload};

fn main() {
    let seed = 7;
    // A Twitter-flavoured graph (heavier degrees), scaled to laptop size.
    let graph = std::sync::Arc::new(datasets::Dataset::Twitter.generate_with_nodes(1_500, seed));
    println!(
        "feed network: {} users, avg degree {:.1}",
        graph.num_nodes(),
        metrics::average_degree(&graph)
    );

    // Evolving join process: users arrive by invitation (Algorithm 1's
    // invitation arm places them near their inviter on the ring).
    let growth = GrowthModel::new(128.0, 0.02);
    let mut net = SelectNetwork::bootstrap_with_growth(
        std::sync::Arc::clone(&graph),
        SelectConfig::default().with_seed(seed),
        &growth,
    );
    let conv = net.converge(300);
    println!("overlay converged in {} rounds", conv.rounds);

    // Publication stream: exponential inter-post times, degree-weighted
    // publishers (active users post more).
    let weights: Vec<usize> = graph.nodes().map(|u| graph.degree(u)).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    let posts = PublishWorkload::default().generate(&mut rng, &weights, 3_600_000, 200);
    println!("replaying {} posts …", posts.len());

    let mut hops = Mean::new();
    let mut relays = Mean::new();
    let mut notified = 0u64;
    let mut availability = Mean::new();
    for post in &posts {
        let r = net.publish(post.publisher);
        notified += r.delivered as u64;
        availability.add(r.availability());
        if r.delivered > 0 {
            hops.add(r.avg_hops);
            relays.add(r.avg_relays);
        }
    }

    println!("notifications delivered : {notified}");
    println!(
        "availability            : {:.2}%",
        availability.mean() * 100.0
    );
    println!("avg hops per delivery   : {:.2}", hops.mean());
    println!("avg relay nodes         : {:.3}", relays.mean());
    println!("worst publication hops  : {:.2}", hops.max().unwrap_or(0.0));
}
