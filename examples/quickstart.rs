//! Quickstart: build a SELECT overlay over a synthetic Facebook-like graph,
//! converge it, and publish a notification.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use select::core::{SelectConfig, SelectNetwork};
use select::graph::prelude::*;

fn main() {
    // 1. A social graph: the Facebook preset of Table II at 1% scale.
    let graph = datasets::Dataset::Facebook.generate_scaled(0.01, 42);
    println!(
        "social graph: {} users, {} connections, avg degree {:.1}",
        graph.num_nodes(),
        graph.num_edges() * 2,
        metrics::average_degree(&graph)
    );

    // 2. Bootstrap SELECT: every user becomes a peer on the ring.
    let mut net = SelectNetwork::bootstrap(graph, SelectConfig::default().with_seed(42));
    println!("bootstrapped with K = {} links per peer", net.k());

    // 3. Run the gossip protocol until the overlay stabilizes.
    let report = net.converge(300);
    println!(
        "converged in {} gossip rounds (stable: {})",
        report.rounds, report.converged
    );

    // 4. Publish a notification from user 0 to all of their friends.
    let publication = net.publish(0);
    println!(
        "published to {} subscribers: delivered {} ({}% availability)",
        publication.subscribers,
        publication.delivered,
        (publication.availability() * 100.0) as u32
    );
    println!(
        "average hops {:.2}, average relay nodes {:.3}",
        publication.avg_hops, publication.avg_relays
    );

    // 5. A single social lookup between two friends.
    let friend = net.online_friends(0)[0];
    let route = net.lookup(0, friend);
    println!(
        "lookup 0 -> {friend}: delivered={} in {} hop(s) via {:?}",
        route.delivered(),
        route.hops(),
        route.path()
    );
}
