//! Group/page notifications — topic-based pub/sub beyond the friend graph.
//!
//! The paper's introduction motivates notifications from "preferable sources
//! (e.g. groups, pages)"; this example builds groups out of overlapping
//! friend circles (how OSN groups actually form), publishes into them, and
//! compares dissemination quality against plain friend notifications.
//!
//! ```sh
//! cargo run --release --example group_notifications
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use select::core::topics::{TopicId, TopicRegistry};
use select::core::{SelectConfig, SelectNetwork};
use select::graph::prelude::*;
use select::sim::Mean;

fn main() {
    let seed = 23;
    let graph = std::sync::Arc::new(datasets::Dataset::Facebook.generate_with_nodes(800, seed));
    let mut net = SelectNetwork::bootstrap(
        std::sync::Arc::clone(&graph),
        SelectConfig::default().with_seed(seed),
    );
    net.converge(300);
    let mut rng = StdRng::seed_from_u64(seed);

    // Build 20 groups, each grown from 1-3 adjacent friend circles.
    let mut registry = TopicRegistry::new();
    for g in 0..20u64 {
        let topic = TopicId(g);
        let owner = rng.gen_range(0..graph.num_nodes() as u32);
        registry.subscribe_circle(topic, &net, owner);
        for _ in 0..rng.gen_range(0..3) {
            let friends = net.online_friends(owner);
            if let Some(&co_owner) = friends.get(rng.gen_range(0..friends.len().max(1))) {
                registry.subscribe_circle(topic, &net, co_owner);
            }
        }
    }
    println!("built {} groups", registry.num_topics());

    let mut group_hops = Mean::new();
    let mut group_relays = Mean::new();
    let mut group_sizes = Mean::new();
    for g in 0..20u64 {
        let topic = TopicId(g);
        let members = registry.subscribers(topic);
        let publisher = members[rng.gen_range(0..members.len())];
        let r = net.publish_topic(&registry, topic, publisher);
        assert_eq!(r.delivered, r.subscribers, "group delivery must be total");
        group_sizes.add(r.subscribers as f64);
        if r.delivered > 0 {
            group_hops.add(r.avg_hops);
            group_relays.add(r.avg_relays);
        }
    }

    let mut friend_hops = Mean::new();
    let mut friend_relays = Mean::new();
    for _ in 0..20 {
        let b = rng.gen_range(0..graph.num_nodes() as u32);
        let r = net.publish(b);
        if r.delivered > 0 {
            friend_hops.add(r.avg_hops);
            friend_relays.add(r.avg_relays);
        }
    }

    println!("\n                | avg hops | avg relays");
    println!(
        "friend walls    | {:8.2} | {:10.3}",
        friend_hops.mean(),
        friend_relays.mean()
    );
    println!(
        "groups (~{:3.0} m) | {:8.2} | {:10.3}",
        group_sizes.mean(),
        group_hops.mean(),
        group_relays.mean()
    );
    println!("\nsocially-grown groups keep dissemination relay-light even though");
    println!("membership is not a friend list — the overlay embedding does the work");
}
