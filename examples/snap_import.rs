//! Importing a real SNAP edge list.
//!
//! The paper evaluates on SNAP snapshots (Facebook, Twitter, Slashdot,
//! Google+). Those files are not bundled here, but `osn_graph::io` reads
//! their exact format — this example writes a synthetic graph in SNAP
//! format, re-imports it, and runs SELECT on the import, which is precisely
//! the workflow for dropping in the real data sets.
//!
//! ```sh
//! cargo run --release --example snap_import [path/to/edges.txt]
//! ```

use select::core::{SelectConfig, SelectNetwork};
use select::graph::io;
use select::graph::prelude::*;

fn main() -> std::io::Result<()> {
    let path = std::env::args().nth(1).map(std::path::PathBuf::from);
    let loaded = match path {
        Some(p) => {
            println!("loading SNAP edge list from {}", p.display());
            io::load_edge_list(&p)?
        }
        None => {
            // No file supplied: synthesize one in SNAP format and reload it.
            let synthetic = datasets::Dataset::Slashdot.generate_with_nodes(500, 11);
            let tmp = std::env::temp_dir().join("select_snap_demo.txt");
            io::save_edge_list(&synthetic, &tmp)?;
            println!(
                "no file given; wrote a synthetic Slashdot-like snapshot to {}",
                tmp.display()
            );
            io::load_edge_list(&tmp)?
        }
    };

    let graph = loaded.graph;
    println!(
        "imported {} users, {} edges, avg degree {:.1}, largest component {}",
        graph.num_nodes(),
        graph.num_edges(),
        metrics::average_degree(&graph),
        metrics::largest_component_size(&graph),
    );

    let mut net = SelectNetwork::bootstrap(graph, SelectConfig::default().with_seed(11));
    let conv = net.converge(300);
    let stats = net.overlay_stats(2_000);
    println!("converged in {} rounds", conv.rounds);
    println!(
        "friend coverage {:.1}%, ring clustering ratio {:.2}, all long links social: {}",
        stats.friend_coverage * 100.0,
        stats.clustering_ratio(),
        stats.social_link_fraction == 1.0
    );

    let r = net.publish(0);
    println!(
        "publish from user 0 (file id {}): {}/{} delivered, {:.2} hops avg",
        loaded.file_id[0], r.delivered, r.subscribers, r.avg_hops
    );
    Ok(())
}
