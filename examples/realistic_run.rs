//! Realistic run: actual concurrent peers forwarding a 1.2 MB payload.
//!
//! Converges a SELECT overlay, then spins up one OS thread per peer
//! (crossbeam channels as links — the stand-in for the paper's WebRTC
//! browser peers) and pushes a real 1.2 MB buffer through the dissemination
//! tree. Also reports the virtual-time latency model's prediction for the
//! same tree (the Fig. 7 machinery).
//!
//! ```sh
//! cargo run --release --example realistic_run
//! ```

use bytes::Bytes;
use select::core::{SelectConfig, SelectNetwork};
use select::graph::prelude::*;
use select::net::{ThreadedNetwork, TransferSim};
use std::time::{Duration, Instant};

fn main() {
    let seed = 3;
    let graph = std::sync::Arc::new(datasets::Dataset::Facebook.generate_with_nodes(300, seed));
    let mut net = SelectNetwork::bootstrap(
        std::sync::Arc::clone(&graph),
        SelectConfig::default().with_seed(seed),
    );
    net.converge(300);

    // Pick a publisher with a decent audience.
    let publisher = graph.nodes().max_by_key(|&u| graph.degree(u)).unwrap().0;
    let report = net.publish(publisher);
    println!(
        "publisher {publisher}: {} subscribers, tree of {} edges",
        report.subscribers,
        report.tree.edges().len()
    );

    // Virtual-time prediction (heterogeneous bandwidth, serialized uploads).
    let sim = TransferSim::with_bandwidths(
        (0..graph.num_nodes() as u32)
            .map(|p| net.bandwidth_of(p))
            .collect(),
        seed,
    );
    let timing = sim.simulate(&report.tree);
    println!(
        "virtual-time model: mean arrival {:.0} ms, last subscriber at {:.0} ms",
        timing.mean_latency, timing.max_latency
    );

    // Real threads: every peer is an actor; payload buffers are refcounted.
    let mut threads = ThreadedNetwork::spawn(graph.num_nodes());
    let payload = Bytes::from(vec![0xAB; 1_200_000]);
    let start = Instant::now();
    let result = threads.publish(&report.tree, payload, Duration::from_secs(30));
    let wall = start.elapsed();
    println!(
        "threaded run: {} peers received {:.1} MB total in {:.1} ms wall time",
        result.delivered_to.len(),
        result.bytes_received as f64 / 1e6,
        wall.as_secs_f64() * 1e3
    );
    let expected: std::collections::HashSet<u32> = report
        .tree
        .edges()
        .into_iter()
        .map(|(_, v)| v)
        .filter(|&v| v != publisher)
        .collect();
    assert_eq!(
        result.delivered_to, expected,
        "every tree node must receive the payload"
    );
    threads.shutdown();
    println!("all peer threads joined cleanly");
}
