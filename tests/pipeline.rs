//! End-to-end pipeline integration tests: dataset presets → SELECT bootstrap
//! → convergence → publication, checked against the paper's headline claims
//! on every preset and across seeds.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use select::baselines::{build_system, SystemKind};
use select::core::{SelectConfig, SelectNetwork};
use select::graph::prelude::*;
use select::sim::Mean;

fn preset_graph(ds: datasets::Dataset, seed: u64) -> SocialGraph {
    ds.generate_with_nodes(200, seed)
}

#[test]
fn full_pipeline_on_every_dataset_preset() {
    for ds in datasets::Dataset::ALL {
        let graph = preset_graph(ds, 1);
        let mut net = SelectNetwork::bootstrap(graph.clone(), SelectConfig::default().with_seed(1));
        let conv = net.converge(300);
        assert!(conv.converged, "{} did not converge", ds.name());

        // Every publication reaches every online friend.
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10 {
            let b = rng.gen_range(0..graph.num_nodes() as u32);
            let r = net.publish(b);
            assert_eq!(
                r.delivered,
                r.subscribers,
                "{}: failed {:?}",
                ds.name(),
                r.tree.failed
            );
        }
    }
}

#[test]
fn select_beats_symphony_on_hops_and_relays_across_seeds() {
    for seed in [3u64, 5, 11] {
        let graph = preset_graph(datasets::Dataset::Facebook, seed);
        let select = build_system(SystemKind::Select, graph.clone(), 8, seed);
        let symphony = build_system(SystemKind::Symphony, graph.clone(), 8, seed);
        let mut rng = StdRng::seed_from_u64(seed);
        let (mut sel_h, mut sym_h) = (Mean::new(), Mean::new());
        let (mut sel_r, mut sym_r) = (Mean::new(), Mean::new());
        for _ in 0..15 {
            let b = rng.gen_range(0..graph.num_nodes() as u32);
            let rs = select.publish(b);
            let ry = symphony.publish(b);
            if rs.delivered > 0 {
                sel_h.add(rs.avg_hops);
                sel_r.add(rs.avg_relays);
            }
            if ry.delivered > 0 {
                sym_h.add(ry.avg_hops);
                sym_r.add(ry.avg_relays);
            }
        }
        assert!(
            sel_h.mean() < 0.6 * sym_h.mean(),
            "seed {seed}: hops {} vs {}",
            sel_h.mean(),
            sym_h.mean()
        );
        assert!(
            sel_r.mean() < 0.4 * sym_r.mean(),
            "seed {seed}: relays {} vs {}",
            sel_r.mean(),
            sym_r.mean()
        );
    }
}

#[test]
fn deterministic_replay_given_seed() {
    let graph = preset_graph(datasets::Dataset::Slashdot, 7);
    let run = |g: &SocialGraph| {
        let mut net = SelectNetwork::bootstrap(g.clone(), SelectConfig::default().with_seed(7));
        let conv = net.converge(300);
        let pubs: Vec<(usize, f64, f64)> = (0..20u32)
            .map(|b| {
                let r = net.publish(b);
                (r.delivered, r.avg_hops, r.avg_relays)
            })
            .collect();
        (conv.rounds, pubs)
    };
    assert_eq!(
        run(&graph),
        run(&graph),
        "same seed must replay identically"
    );
}

#[test]
fn growth_bootstrap_pipeline_delivers() {
    let graph = preset_graph(datasets::Dataset::GooglePlus, 13);
    let mut net = SelectNetwork::bootstrap_with_growth(
        graph.clone(),
        SelectConfig::default().with_seed(13),
        &GrowthModel::default(),
    );
    net.converge(300);
    let r = net.publish(0);
    assert_eq!(r.delivered, r.subscribers);
    assert!(r.avg_hops < 4.0, "hops {}", r.avg_hops);
}

#[test]
fn every_system_achieves_full_availability_on_static_network() {
    let graph = preset_graph(datasets::Dataset::Facebook, 21);
    for kind in SystemKind::ALL {
        let sys = build_system(kind, graph.clone(), 8, 21);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..8 {
            let b = rng.gen_range(0..graph.num_nodes() as u32);
            let r = sys.publish(b);
            assert_eq!(
                r.delivered, r.subscribers,
                "{:?} failed {:?}",
                kind, r.tree.failed
            );
        }
    }
}
