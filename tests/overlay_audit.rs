//! Audit-feature integration test: the [`OverlayAuditor`] must hold on every
//! round of a real convergence run **and** leave the protocol bit-identical.
//!
//! With `--features audit` the auditor re-checks ring symmetry, link
//! symmetry, degree caps, the selection-time LSH representative rule, CSR
//! side-table agreement and CMA ranges after every gossip/recovery round. If
//! any invariant breaks mid-run these tests panic with peer/slot context; if
//! the audit plumbing itself perturbed protocol state (it must be read-only)
//! the golden hash diverges — the same pin as `tests/golden_state.rs`.
//!
//! Run with: `cargo test --features audit --test overlay_audit`
#![cfg(feature = "audit")]

use select::core::{SelectConfig, SelectNetwork};
use select::graph::prelude::*;

/// FNV-1a over a stream of u64 words; stable across platforms.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn word(&mut self, w: u64) {
        for byte in w.to_le_bytes() {
            self.0 ^= byte as u64;
            self.0 = self.0.wrapping_mul(0x1_0000_01b3);
        }
    }
}

/// Converge on Facebook-200 (seed 42) with the auditor active on every
/// round, then hash the full overlay state and 20 publish traces. Mirrors
/// `tests/golden_state.rs` so both features pin the identical value.
fn audited_state_hash(threads: usize) -> u64 {
    let graph = datasets::Dataset::Facebook.generate_with_nodes(200, 42);
    let mut net = SelectNetwork::bootstrap(
        graph,
        SelectConfig::default().with_seed(42).with_threads(threads),
    );
    let report = net.converge(300);
    assert!(report.converged, "threads={threads} did not converge");
    // One explicit end-state sweep on top of the per-round checks.
    net.assert_overlay_invariants("audited convergence end state");

    let mut h = Fnv::new();
    h.word(report.rounds as u64);
    for p in 0..net.len() as u32 {
        h.word(net.identifier_of(p).0);
        let table = net.table(p);
        h.word(table.long_links().len() as u64);
        for &l in table.long_links() {
            h.word(l as u64);
        }
        let mut incoming = table.incoming_links().to_vec();
        incoming.sort_unstable();
        h.word(incoming.len() as u64);
        for l in incoming {
            h.word(l as u64);
        }
    }
    for b in 0..20u32 {
        let r = net.publish(b);
        h.word(r.delivered as u64);
        h.word(r.subscribers as u64);
        h.word(r.avg_hops.to_bits());
        h.word(r.total_relays as u64);
        for path in r.tree.paths() {
            h.word(path.len() as u64);
            for &q in path.iter() {
                h.word(q as u64);
            }
        }
        for &s in &r.tree.failed {
            h.word(s as u64);
        }
    }
    h.0
}

/// Same pin as `tests/golden_state.rs`: auditing must not change anything.
const GOLDEN: u64 = 0xFDE0_9894_F723_B576;

#[test]
fn audited_convergence_matches_golden_single_thread() {
    assert_eq!(
        audited_state_hash(1),
        GOLDEN,
        "auditor perturbed the converged overlay (threads=1)"
    );
}

#[test]
fn audited_convergence_matches_golden_eight_threads() {
    assert_eq!(
        audited_state_hash(8),
        GOLDEN,
        "auditor perturbed the converged overlay (threads=8)"
    );
}
