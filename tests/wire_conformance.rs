//! Cross-transport conformance: TCP sockets vs the in-process reference.
//!
//! The wire refactor's contract is that the transport is *swappable*: the
//! same seed, the same converged overlay, the same routing trees and the
//! same fault plan must yield **identical delivery sets** whether frames
//! cross crossbeam channels ([`select::net::ThreadedNetwork`]) or loopback
//! TCP sockets ([`select::net::SocketNetwork`]). With a fire-and-forget
//! budget (`retry_max = 0`) the delivery set is a pure function of the plan
//! — exactly the attempt-0 survivors reachable from the publisher — so both
//! transports are additionally checked against that oracle, computed here
//! by BFS. Replayed at worker-thread counts {1, 8}: the converged trees are
//! already pinned thread-invariant by the golden-state suite, and this test
//! pins that the *transports* preserve that invariance end to end.

use bytes::Bytes;
use select::core::{RoutingTree, SelectConfig, SelectNetwork};
use select::graph::prelude::*;
use select::net::{SocketNetwork, ThreadedNetwork, Transport};
use select::obs::trace::TraceAssembler;
use select::sim::FaultPlan;
use std::collections::HashSet;
use std::time::Duration;

const N_PUBS: u32 = 8;
const PAYLOAD: &[u8] = &[0x42; 512];

/// Converge Facebook-120 (seed 42) at the given worker-thread count and
/// collect one routing tree per publisher. (Smaller than the golden-state
/// preset on purpose: conformance needs *a* converged overlay, not the
/// pinned one, and this test runs in the tier-1 debug suite.)
fn converged_trees(threads: usize) -> (usize, Vec<RoutingTree>) {
    let graph = datasets::Dataset::Facebook.generate_with_nodes(120, 42);
    let mut net = SelectNetwork::bootstrap(
        graph,
        SelectConfig::default().with_seed(42).with_threads(threads),
    );
    let report = net.converge(300);
    assert!(report.converged, "threads={threads} did not converge");
    let n = net.len();
    let trees = (0..N_PUBS).map(|b| net.publish(b).tree).collect();
    (n, trees)
}

/// The fire-and-forget delivery oracle: BFS from the publisher over the
/// tree's forwarding plan, crossing only links the plan does not drop at
/// attempt 0. Publications are numbered from 1, in publish order, exactly
/// like the transports' `next_pub_id`.
fn oracle(tree: &RoutingTree, plan: &FaultPlan, pub_id: u64) -> HashSet<u32> {
    let children = select::core::wire::children_of(tree);
    let mut reached = HashSet::from([tree.publisher]);
    let mut frontier = vec![tree.publisher];
    while let Some(u) = frontier.pop() {
        let Some(kids) = select::core::wire::children_for(&children, u) else {
            continue;
        };
        for &v in kids {
            if !plan.drops(pub_id, 0, u, v) && reached.insert(v) {
                frontier.push(v);
            }
        }
    }
    reached.remove(&tree.publisher);
    reached
}

/// Publishes every tree over both transports under `plan` and asserts the
/// delivery sets agree with each other and (for `retry_max = 0`) with the
/// oracle. Returns the per-publication delivery sets for cross-thread
/// pinning.
fn replay_both_transports(n: usize, trees: &[RoutingTree], plan: FaultPlan) -> Vec<HashSet<u32>> {
    let mut inproc = ThreadedNetwork::spawn_with_faults(n, plan, 0);
    let mut tcp = SocketNetwork::spawn_with_faults(n, plan, 0).expect("loopback listeners");
    let mut sets = Vec::with_capacity(trees.len());
    for (i, tree) in trees.iter().enumerate() {
        let pub_id = i as u64 + 1; // both transports count from 1
        let want = oracle(tree, &plan, pub_id);
        let a = inproc.publish(tree, Bytes::from_static(PAYLOAD), Duration::from_secs(10));
        let b = tcp.publish(tree, Bytes::from_static(PAYLOAD), Duration::from_secs(10));
        assert_eq!(
            a.delivered_to, want,
            "in-process delivery diverged from the fault-plan oracle (pub {pub_id})"
        );
        assert_eq!(
            b.delivered_to, want,
            "TCP delivery diverged from the fault-plan oracle (pub {pub_id})"
        );
        assert_eq!(
            a.drops_injected, b.drops_injected,
            "transports drew different fault decisions (pub {pub_id})"
        );
        sets.push(a.delivered_to);
    }
    inproc.shutdown();
    tcp.shutdown();
    sets
}

#[test]
fn tcp_and_inproc_delivery_sets_match_at_one_and_eight_threads() {
    // 15% link loss, plus delay jitter so frames also arrive out of order —
    // ordering must not affect *what* is delivered, only when. One test
    // shares the (debug-mode-expensive) threads=1 convergence between the
    // oracle replay and the retry-saturation check, so the single-core CI
    // container pays for exactly two convergences.
    let plan = FaultPlan::seeded(7)
        .with_drop_prob(0.15)
        .with_max_delay_ms(5.0);
    let (n1, trees1) = converged_trees(1);
    let sets1 = replay_both_transports(n1, &trees1, plan);
    assert_retries_saturate(n1, &trees1);
    let (n8, trees8) = converged_trees(8);
    let sets8 = replay_both_transports(n8, &trees8, plan);
    assert_eq!(
        sets1, sets8,
        "delivery sets changed with the overlay's worker-thread count"
    );

    // Tracing conformance rides on the same two convergences. The canonical
    // trace render strips wall clocks, so under the fault-free plan it is a
    // pure function of the routing trees — identical across worker-thread
    // counts and across transports.
    let render1 = traced_replay(&mut ThreadedNetwork::spawn(n1), &trees1, "in-process");
    let render8 = traced_replay(&mut ThreadedNetwork::spawn(n8), &trees8, "in-process");
    assert_eq!(
        render1, render8,
        "canonical trace trees changed with the overlay's worker-thread count"
    );
    let mut tcp = SocketNetwork::spawn(n1).expect("loopback listeners");
    let render_tcp = traced_replay(&mut tcp, &trees1, "TCP");
    assert_eq!(
        render_tcp, render1,
        "TCP canonical trace trees diverged from the in-process reference"
    );
}

/// Replays every tree with tracing on, asserts each publication's span set
/// forms a complete causal chain root→leaf over its delivery set, and
/// returns the canonical (wall-free) render of all trace trees.
fn traced_replay<T: Transport + ?Sized>(net: &mut T, trees: &[RoutingTree], label: &str) -> String {
    net.set_tracing(true);
    let mut expected: Vec<(u64, Vec<u32>)> = Vec::with_capacity(trees.len());
    for (i, tree) in trees.iter().enumerate() {
        let pub_id = i as u64 + 1; // fresh transport, ids count from 1
        let r = select::net::publish_over(
            net,
            tree,
            Bytes::from_static(PAYLOAD),
            Duration::from_secs(10),
            0,
            pub_id,
        );
        // The publisher's local delivery has a span too (the root of the
        // trace tree) even though it is excluded from `delivered_to`.
        let mut peers: Vec<u32> = r.delivered_to.iter().copied().collect();
        peers.push(tree.publisher);
        peers.sort_unstable();
        peers.dedup();
        expected.push((pub_id, peers));
    }
    // The socket transport flushes its per-peer span buffers when the peer
    // threads exit, so drain only after shutdown.
    net.shutdown();
    let mut asm = TraceAssembler::new();
    asm.absorb(net.drain_spans());
    for (pub_id, peers) in &expected {
        let gaps = asm.chain_gaps(*pub_id, peers);
        assert!(
            gaps.is_empty(),
            "{label} span chain incomplete (pub {pub_id}): {gaps:?}"
        );
    }
    asm.render_all()
}

/// With a retry budget the delivery set must saturate to the full
/// subscriber set on both transports, lossy links notwithstanding:
/// retransmissions are direct driver injections and draw no faults.
fn assert_retries_saturate(n: usize, trees: &[RoutingTree]) {
    let plan = FaultPlan::seeded(11).with_drop_prob(0.3);
    let mut inproc = ThreadedNetwork::spawn_with_faults(n, plan, 4);
    let mut tcp = SocketNetwork::spawn_with_faults(n, plan, 4).expect("loopback listeners");
    for tree in trees.iter().take(4) {
        let subscribers: HashSet<u32> = tree
            .paths()
            .filter_map(|p| p.last().copied())
            .filter(|&s| s != tree.publisher)
            .collect();
        let a = inproc.publish(tree, Bytes::from_static(PAYLOAD), Duration::from_secs(20));
        let b = tcp.publish(tree, Bytes::from_static(PAYLOAD), Duration::from_secs(20));
        assert!(
            a.delivered_to.is_superset(&subscribers),
            "in-process retries left subscribers unreached"
        );
        assert!(
            b.delivered_to.is_superset(&subscribers),
            "TCP retries left subscribers unreached"
        );
    }
    inproc.shutdown();
    tcp.shutdown();
}
