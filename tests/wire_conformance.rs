//! Cross-transport conformance: TCP sockets vs the in-process reference.
//!
//! The wire refactor's contract is that the transport is *swappable*: the
//! same seed, the same converged overlay, the same routing trees and the
//! same fault plan must yield **identical delivery sets** whether frames
//! cross crossbeam channels ([`select::net::ThreadedNetwork`]) or loopback
//! TCP sockets ([`select::net::SocketNetwork`]). With a fire-and-forget
//! budget (`retry_max = 0`) the delivery set is a pure function of the plan
//! — exactly the attempt-0 survivors reachable from the publisher — so both
//! transports are additionally checked against that oracle, computed here
//! by BFS. Replayed at worker-thread counts {1, 8}: the converged trees are
//! already pinned thread-invariant by the golden-state suite, and this test
//! pins that the *transports* preserve that invariance end to end.

use bytes::Bytes;
use select::core::{RoutingTree, SelectConfig, SelectNetwork};
use select::graph::prelude::*;
use select::net::{SocketNetwork, ThreadedNetwork};
use select::sim::FaultPlan;
use std::collections::HashSet;
use std::time::Duration;

const N_PUBS: u32 = 8;
const PAYLOAD: &[u8] = &[0x42; 512];

/// Converge Facebook-120 (seed 42) at the given worker-thread count and
/// collect one routing tree per publisher. (Smaller than the golden-state
/// preset on purpose: conformance needs *a* converged overlay, not the
/// pinned one, and this test runs in the tier-1 debug suite.)
fn converged_trees(threads: usize) -> (usize, Vec<RoutingTree>) {
    let graph = datasets::Dataset::Facebook.generate_with_nodes(120, 42);
    let mut net = SelectNetwork::bootstrap(
        graph,
        SelectConfig::default().with_seed(42).with_threads(threads),
    );
    let report = net.converge(300);
    assert!(report.converged, "threads={threads} did not converge");
    let n = net.len();
    let trees = (0..N_PUBS).map(|b| net.publish(b).tree).collect();
    (n, trees)
}

/// The fire-and-forget delivery oracle: BFS from the publisher over the
/// tree's forwarding plan, crossing only links the plan does not drop at
/// attempt 0. Publications are numbered from 1, in publish order, exactly
/// like the transports' `next_pub_id`.
fn oracle(tree: &RoutingTree, plan: &FaultPlan, pub_id: u64) -> HashSet<u32> {
    let children = select::core::wire::children_of(tree);
    let mut reached = HashSet::from([tree.publisher]);
    let mut frontier = vec![tree.publisher];
    while let Some(u) = frontier.pop() {
        let Some(kids) = select::core::wire::children_for(&children, u) else {
            continue;
        };
        for &v in kids {
            if !plan.drops(pub_id, 0, u, v) && reached.insert(v) {
                frontier.push(v);
            }
        }
    }
    reached.remove(&tree.publisher);
    reached
}

/// Publishes every tree over both transports under `plan` and asserts the
/// delivery sets agree with each other and (for `retry_max = 0`) with the
/// oracle. Returns the per-publication delivery sets for cross-thread
/// pinning.
fn replay_both_transports(n: usize, trees: &[RoutingTree], plan: FaultPlan) -> Vec<HashSet<u32>> {
    let mut inproc = ThreadedNetwork::spawn_with_faults(n, plan, 0);
    let mut tcp = SocketNetwork::spawn_with_faults(n, plan, 0).expect("loopback listeners");
    let mut sets = Vec::with_capacity(trees.len());
    for (i, tree) in trees.iter().enumerate() {
        let pub_id = i as u64 + 1; // both transports count from 1
        let want = oracle(tree, &plan, pub_id);
        let a = inproc.publish(tree, Bytes::from_static(PAYLOAD), Duration::from_secs(10));
        let b = tcp.publish(tree, Bytes::from_static(PAYLOAD), Duration::from_secs(10));
        assert_eq!(
            a.delivered_to, want,
            "in-process delivery diverged from the fault-plan oracle (pub {pub_id})"
        );
        assert_eq!(
            b.delivered_to, want,
            "TCP delivery diverged from the fault-plan oracle (pub {pub_id})"
        );
        assert_eq!(
            a.drops_injected, b.drops_injected,
            "transports drew different fault decisions (pub {pub_id})"
        );
        sets.push(a.delivered_to);
    }
    inproc.shutdown();
    tcp.shutdown();
    sets
}

#[test]
fn tcp_and_inproc_delivery_sets_match_at_one_and_eight_threads() {
    // 15% link loss, plus delay jitter so frames also arrive out of order —
    // ordering must not affect *what* is delivered, only when. One test
    // shares the (debug-mode-expensive) threads=1 convergence between the
    // oracle replay and the retry-saturation check, so the single-core CI
    // container pays for exactly two convergences.
    let plan = FaultPlan::seeded(7)
        .with_drop_prob(0.15)
        .with_max_delay_ms(5.0);
    let (n1, trees1) = converged_trees(1);
    let sets1 = replay_both_transports(n1, &trees1, plan);
    assert_retries_saturate(n1, &trees1);
    let (n8, trees8) = converged_trees(8);
    let sets8 = replay_both_transports(n8, &trees8, plan);
    assert_eq!(
        sets1, sets8,
        "delivery sets changed with the overlay's worker-thread count"
    );
}

/// With a retry budget the delivery set must saturate to the full
/// subscriber set on both transports, lossy links notwithstanding:
/// retransmissions are direct driver injections and draw no faults.
fn assert_retries_saturate(n: usize, trees: &[RoutingTree]) {
    let plan = FaultPlan::seeded(11).with_drop_prob(0.3);
    let mut inproc = ThreadedNetwork::spawn_with_faults(n, plan, 4);
    let mut tcp = SocketNetwork::spawn_with_faults(n, plan, 4).expect("loopback listeners");
    for tree in trees.iter().take(4) {
        let subscribers: HashSet<u32> = tree
            .paths()
            .filter_map(|p| p.last().copied())
            .filter(|&s| s != tree.publisher)
            .collect();
        let a = inproc.publish(tree, Bytes::from_static(PAYLOAD), Duration::from_secs(20));
        let b = tcp.publish(tree, Bytes::from_static(PAYLOAD), Duration::from_secs(20));
        assert!(
            a.delivered_to.is_superset(&subscribers),
            "in-process retries left subscribers unreached"
        );
        assert!(
            b.delivered_to.is_superset(&subscribers),
            "TCP retries left subscribers unreached"
        );
    }
    inproc.shutdown();
    tcp.shutdown();
}
