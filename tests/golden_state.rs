//! Golden-state regression pin for the hot-path storage refactor.
//!
//! The hash below was captured on the pre-refactor `HashMap`-per-peer
//! storage (commit f1fcd4e) and covers everything the flattened CSR/SoA
//! layout must reproduce bit-for-bit: converged identifiers, long links,
//! incoming links, and 20 full publish traces (per-path node sequences and
//! the failed set), at 1 and 8 worker threads. Any layout change that
//! perturbs protocol results — bucket ordering, CMA trust decisions,
//! scratch-buffer reuse leaking state between publications — shows up here
//! as a one-word diff.

use select::core::{SelectConfig, SelectNetwork};
use select::graph::prelude::*;

/// FNV-1a over a stream of u64 words; stable across platforms.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn word(&mut self, w: u64) {
        for byte in w.to_le_bytes() {
            self.0 ^= byte as u64;
            self.0 = self.0.wrapping_mul(0x1_0000_01b3);
        }
    }
}

/// Converge on Facebook-200 (seed 42), then hash the full overlay state and
/// 20 publish traces. With `observed`, every publish additionally runs the
/// full metrics + flight-recorder instrumentation — the hash must not move
/// (observation is read-only; the observer-effect pin).
fn converged_state_hash_observed(threads: usize, observed: bool) -> u64 {
    let graph = datasets::Dataset::Facebook.generate_with_nodes(200, 42);
    let mut net = SelectNetwork::bootstrap(
        graph,
        SelectConfig::default().with_seed(42).with_threads(threads),
    );
    let report = net.converge(300);
    assert!(report.converged, "threads={threads} did not converge");
    let mut obs = select::obs::Observer::for_peers(net.len()).with_tracing(8);

    let mut h = Fnv::new();
    h.word(report.rounds as u64);
    for p in 0..net.len() as u32 {
        h.word(net.identifier_of(p).0);
        let table = net.table(p);
        h.word(table.long_links().len() as u64);
        for &l in table.long_links() {
            h.word(l as u64);
        }
        let mut incoming = table.incoming_links().to_vec();
        incoming.sort_unstable();
        h.word(incoming.len() as u64);
        for l in incoming {
            h.word(l as u64);
        }
    }
    for b in 0..20u32 {
        let r = if observed {
            net.publish_observed(b, 0, &mut obs)
        } else {
            net.publish(b)
        };
        h.word(r.delivered as u64);
        h.word(r.subscribers as u64);
        h.word(r.avg_hops.to_bits());
        h.word(r.total_relays as u64);
        for path in r.tree.paths() {
            h.word(path.len() as u64);
            for &q in path.iter() {
                h.word(q as u64);
            }
        }
        for &s in &r.tree.failed {
            h.word(s as u64);
        }
    }
    h.0
}

/// Pre-refactor golden hash; see module docs.
const GOLDEN: u64 = 0xFDE0_9894_F723_B576;

#[test]
fn flattened_storage_reproduces_pinned_overlay_single_thread() {
    assert_eq!(
        converged_state_hash_observed(1, false),
        GOLDEN,
        "converged overlay diverged from the pre-refactor golden state (threads=1)"
    );
}

#[test]
fn flattened_storage_reproduces_pinned_overlay_eight_threads() {
    assert_eq!(
        converged_state_hash_observed(8, false),
        GOLDEN,
        "converged overlay diverged from the pre-refactor golden state (threads=8)"
    );
}

/// Same pin over the batched publish path: each of the 20 traces comes out
/// of a `publish_batch_at` batch instead of a standalone `publish`. The
/// nonce-0 report of every batch must be bit-identical to the standalone
/// publish, so the hash must not move.
fn converged_state_hash_batched(threads: usize) -> u64 {
    let graph = datasets::Dataset::Facebook.generate_with_nodes(200, 42);
    let mut net = SelectNetwork::bootstrap(
        graph,
        SelectConfig::default().with_seed(42).with_threads(threads),
    );
    let report = net.converge(300);
    assert!(report.converged, "threads={threads} did not converge");

    let mut h = Fnv::new();
    h.word(report.rounds as u64);
    for p in 0..net.len() as u32 {
        h.word(net.identifier_of(p).0);
        let table = net.table(p);
        h.word(table.long_links().len() as u64);
        for &l in table.long_links() {
            h.word(l as u64);
        }
        let mut incoming = table.incoming_links().to_vec();
        incoming.sort_unstable();
        h.word(incoming.len() as u64);
        for l in incoming {
            h.word(l as u64);
        }
    }
    for b in 0..20u32 {
        let batch = net.publish_batch_at(b, 0, 4);
        assert_eq!(batch.len(), 4);
        let r = &batch[0];
        h.word(r.delivered as u64);
        h.word(r.subscribers as u64);
        h.word(r.avg_hops.to_bits());
        h.word(r.total_relays as u64);
        for path in r.tree.paths() {
            h.word(path.len() as u64);
            for &q in path.iter() {
                h.word(q as u64);
            }
        }
        for &s in &r.tree.failed {
            h.word(s as u64);
        }
    }
    h.0
}

#[test]
fn batched_publishes_keep_the_golden_hash_single_thread() {
    assert_eq!(
        converged_state_hash_batched(1),
        GOLDEN,
        "batched publish path diverged from the golden state (threads=1)"
    );
}

#[test]
fn batched_publishes_keep_the_golden_hash_eight_threads() {
    assert_eq!(
        converged_state_hash_batched(8),
        GOLDEN,
        "batched publish path diverged from the golden state (threads=8)"
    );
}

#[test]
fn observed_publishes_keep_the_golden_hash_single_thread() {
    assert_eq!(
        converged_state_hash_observed(1, true),
        GOLDEN,
        "metrics/tracing recording perturbed protocol state (threads=1)"
    );
}

#[test]
fn observed_publishes_keep_the_golden_hash_eight_threads() {
    assert_eq!(
        converged_state_hash_observed(8, true),
        GOLDEN,
        "metrics/tracing recording perturbed protocol state (threads=8)"
    );
}
