//! Cross-crate property-based tests (proptest) on the system's invariants.

use proptest::prelude::*;
use select::core::{SelectConfig, SelectNetwork};
use select::graph::{GraphBuilder, SocialGraph, UserId};
use select::overlay::{RingId, Topology};
use select::sim::FaultPlan;

/// An arbitrary small connected-ish social graph: a ring backbone (keeps it
/// connected) plus random chords.
fn arb_graph() -> impl Strategy<Value = SocialGraph> {
    (
        6usize..40,
        proptest::collection::vec((0u32..40, 0u32..40), 0..60),
    )
        .prop_map(|(n, chords)| {
            let mut b = GraphBuilder::new(n);
            for i in 0..n as u32 {
                b.add_edge(UserId(i), UserId((i + 1) % n as u32));
            }
            for (u, v) in chords {
                let (u, v) = (u % n as u32, v % n as u32);
                if u != v {
                    b.add_edge(UserId(u), UserId(v));
                }
            }
            b.build()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The ring metric satisfies the metric axioms.
    #[test]
    fn ring_metric_axioms(a in any::<u64>(), b in any::<u64>(), c in any::<u64>()) {
        let (a, b, c) = (RingId(a), RingId(b), RingId(c));
        prop_assert_eq!(a.distance(b), b.distance(a));
        prop_assert_eq!(a.distance(a).0, 0);
        if a != b {
            prop_assert!(a.distance(b).0 > 0);
        }
        prop_assert!(
            a.distance(c).0 as u128 <= a.distance(b).0 as u128 + b.distance(c).0 as u128
        );
    }

    /// Midpoints are equidistant (±1 tick) and never farther than the arc.
    #[test]
    fn midpoint_is_between(a in any::<u64>(), b in any::<u64>()) {
        let (a, b) = (RingId(a), RingId(b));
        let m = a.midpoint(b);
        prop_assert!(m.distance(a).0.abs_diff(m.distance(b).0) <= 1);
        prop_assert!(m.distance(a).0 <= a.distance(b).0);
    }

    /// Every publication on a converged SELECT network reaches every online
    /// friend, with relays bounded by hops, on arbitrary graphs.
    #[test]
    fn publish_reaches_all_friends_on_arbitrary_graphs(
        graph in arb_graph(),
        seed in 0u64..1000,
        publisher_sel in 0u32..40,
    ) {
        let mut net = SelectNetwork::bootstrap(
            graph.clone(),
            SelectConfig::default().with_seed(seed),
        );
        net.converge(150);
        let b = publisher_sel % graph.num_nodes() as u32;
        let r = net.publish(b);
        prop_assert_eq!(r.delivered, r.subscribers);
        prop_assert!(r.avg_relays <= r.avg_hops);
        // Every path starts at the publisher and ends at a friend.
        for path in r.tree.paths() {
            prop_assert_eq!(path[0], b);
            let s = *path.last().unwrap();
            prop_assert!(graph.has_edge(UserId(b), UserId(s)));
        }
    }

    /// Identifiers remain unique after convergence, and the reported links
    /// always point to online peers or socially known ones.
    #[test]
    fn identifiers_stay_unique(graph in arb_graph(), seed in 0u64..1000) {
        let mut net = SelectNetwork::bootstrap(
            graph.clone(),
            SelectConfig::default().with_seed(seed),
        );
        net.converge(150);
        let n = graph.num_nodes() as u32;
        let mut ids: Vec<u64> = (0..n)
            .map(|p| net.identifier_of(p).0)
            .collect();
        ids.sort_unstable();
        let before = ids.len();
        ids.dedup();
        prop_assert_eq!(ids.len(), before, "identifier collision");
        // Long links stay within the social neighbourhood.
        for p in 0..n {
            for &l in net.table(p).long_links() {
                prop_assert!(graph.has_edge(UserId(p), UserId(l)));
            }
        }
    }

    /// With churn and an active fault plan, every *delivered* path still
    /// respects the hop budget and crosses only online relays — and the
    /// whole report is bit-identical at 1, 2 and 8 round-loop threads.
    #[test]
    fn faulty_deliveries_respect_budget_and_liveness(
        graph in arb_graph(),
        seed in 0u64..500,
        publisher_sel in 0u32..40,
        dead_sel in proptest::collection::vec(0u32..40, 0..6),
    ) {
        let n = graph.num_nodes() as u32;
        let b = publisher_sel % n;
        let plan = FaultPlan::seeded(seed ^ 0xfa)
            .with_drop_prob(0.2)
            .with_crash_prob(0.05);
        let mut reports = Vec::new();
        for threads in [1usize, 2, 8] {
            let mut net = SelectNetwork::bootstrap(
                graph.clone(),
                SelectConfig::default()
                    .with_seed(seed)
                    .with_threads(threads)
                    .with_fault_plan(plan)
                    .with_retry_max(2),
            );
            net.converge(150);
            for d in &dead_sel {
                let d = d % n;
                if d != b {
                    net.set_offline(d);
                }
            }
            net.probe_round();
            let max_hops = net.config().max_route_hops;
            let r = net.publish_at(b, 7);
            for path in r.tree.paths() {
                prop_assert!(
                    path.len() - 1 <= max_hops,
                    "path {path:?} exceeds max_route_hops={max_hops}"
                );
                for &hop in path {
                    prop_assert!(
                        net.is_peer_online(hop),
                        "delivered path {path:?} crosses offline peer {hop}"
                    );
                }
            }
            prop_assert_eq!(
                r.delivered + r.tree.failed.len(),
                r.subscribers,
                "every subscriber must be accounted delivered or failed"
            );
            reports.push(r);
        }
        prop_assert_eq!(&reports[0].tree, &reports[1].tree);
        prop_assert_eq!(&reports[0].tree, &reports[2].tree);
        prop_assert_eq!(reports[0].delivery, reports[1].delivery);
        prop_assert_eq!(reports[0].delivery, reports[2].delivery);
    }

    /// Lookups between arbitrary (not necessarily adjacent) peers terminate
    /// and, when delivered, follow existing connections.
    #[test]
    fn lookups_follow_real_connections(
        graph in arb_graph(),
        seed in 0u64..1000,
        pair in (0u32..40, 0u32..40),
    ) {
        let mut net = SelectNetwork::bootstrap(
            graph.clone(),
            SelectConfig::default().with_seed(seed),
        );
        net.converge(150);
        let n = graph.num_nodes() as u32;
        let (from, to) = (pair.0 % n, pair.1 % n);
        let out = net.lookup(from, to);
        if out.delivered() {
            let path = out.path();
            for w in path.windows(2) {
                prop_assert!(
                    net.links(w[0]).contains(&w[1]),
                    "hop {}->{} without a connection",
                    w[0],
                    w[1]
                );
            }
        }
    }
}
