//! Thread-count invariance of the superstep round loop: `converge`,
//! per-round telemetry, the resulting overlay state and subsequent publish
//! traces must be bit-identical for every worker count (the determinism
//! contract of DESIGN.md's round-loop execution model).

use select::core::{ConvergenceReport, SelectConfig, SelectNetwork};
use select::graph::prelude::*;

/// Full observable outcome of one converge-then-publish run.
#[derive(Debug, PartialEq)]
struct RunOutcome {
    report: ConvergenceReport,
    /// Per-peer (identifier, long links, sorted incoming links).
    state: Vec<(select::overlay::RingId, Vec<u32>, Vec<u32>)>,
    /// Publish traces from a fixed broadcaster set.
    publishes: Vec<(usize, usize, u64, usize)>,
}

fn run(threads: usize) -> RunOutcome {
    let graph = datasets::Dataset::Facebook.generate_with_nodes(200, 42);
    let mut net = SelectNetwork::bootstrap(
        graph,
        SelectConfig::default().with_seed(42).with_threads(threads),
    );
    let report = net.converge(300);
    assert!(report.converged, "threads={threads} did not converge");
    let state = (0..net.len() as u32)
        .map(|p| {
            let mut incoming = net.table(p).incoming_links().to_vec();
            incoming.sort_unstable();
            (
                net.identifier_of(p),
                net.table(p).long_links().to_vec(),
                incoming,
            )
        })
        .collect();
    let publishes = (0..20u32)
        .map(|b| {
            let r = net.publish(b);
            (
                r.delivered,
                r.subscribers,
                r.avg_hops.to_bits(),
                r.total_relays,
            )
        })
        .collect();
    RunOutcome {
        report,
        state,
        publishes,
    }
}

#[test]
fn converge_is_thread_count_invariant() {
    let base = run(1);
    for threads in [2usize, 8] {
        let other = run(threads);
        assert_eq!(
            base.report, other.report,
            "threads={threads} diverged in report/telemetry"
        );
        assert_eq!(
            base.state, other.state,
            "threads={threads} diverged in overlay state"
        );
        assert_eq!(
            base.publishes, other.publishes,
            "threads={threads} diverged in publish traces"
        );
    }
    // Telemetry is substantive, not just equal-and-empty.
    assert!(base.report.telemetry.total_messages() > 0);
    assert!(base.report.telemetry.total_id_moves() > 0);
    assert_eq!(base.report.telemetry.rounds.len(), base.report.rounds);
}

/// Observability histograms are part of the determinism contract: the
/// sharded per-worker recorders merged at the apply barrier must yield
/// bit-identical bucket counts for every worker count, and the publish-path
/// metrics (hops, stretch, latency, relay load) must match because the
/// publish traces they summarize match.
#[test]
fn observability_histograms_are_thread_count_invariant() {
    let observe = |threads: usize| {
        let graph = datasets::Dataset::Facebook.generate_with_nodes(200, 42);
        let mut net = SelectNetwork::bootstrap(
            graph,
            SelectConfig::default().with_seed(42).with_threads(threads),
        );
        let report = net.converge(300);
        assert!(report.converged, "threads={threads} did not converge");
        let mut obs = select::obs::Observer::for_peers(net.len());
        for b in 0..20u32 {
            net.publish_observed(b, b as u64, &mut obs);
        }
        (report.telemetry.link_candidates_histogram(), obs.metrics)
    };
    let (base_candidates, base_metrics) = observe(1);
    for threads in [2usize, 8] {
        let (candidates, metrics) = observe(threads);
        assert_eq!(
            base_candidates, candidates,
            "threads={threads} diverged in the link-candidates histogram"
        );
        assert_eq!(
            base_metrics, metrics,
            "threads={threads} diverged in publish metrics"
        );
    }
    // The invariance is over substantive data, not empty recorders.
    assert!(base_candidates.count() > 0);
    assert!(base_metrics.hops.count() > 0);
    assert!(base_metrics.latency_ms.count() > 0);
}

#[test]
fn auto_thread_default_matches_explicit_one() {
    // threads = 0 resolves to available parallelism; whatever it picks must
    // agree with the single-thread reference.
    let graph = datasets::Dataset::Facebook.generate_with_nodes(150, 7);
    let mut auto = SelectNetwork::bootstrap(graph.clone(), SelectConfig::default().with_seed(7));
    let mut one =
        SelectNetwork::bootstrap(graph, SelectConfig::default().with_seed(7).with_threads(1));
    assert_eq!(auto.converge(300), one.converge(300));
    for p in 0..auto.len() as u32 {
        assert_eq!(auto.identifier_of(p), one.identifier_of(p));
        assert_eq!(auto.table(p).long_links(), one.table(p).long_links());
    }
}
