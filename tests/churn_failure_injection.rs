//! Failure-injection integration tests: arbitrary peer subsets die, the
//! recovery machinery reacts, and delivery guarantees are re-checked.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use select::core::{DeliveryTelemetry, RoutingTree, SelectConfig, SelectNetwork};
use select::graph::prelude::*;
use select::sim::{ChurnModel, FaultPlan, LogNormal, Mean};

fn converged_net(n: usize, seed: u64) -> (SocialGraph, SelectNetwork) {
    let graph = datasets::Dataset::Facebook.generate_with_nodes(n, seed);
    let mut net = SelectNetwork::bootstrap(graph.clone(), SelectConfig::default().with_seed(seed));
    net.converge(300);
    for _ in 0..5 {
        net.probe_round(); // establish CMA trust
    }
    (graph, net)
}

#[test]
fn random_kill_of_quarter_network_keeps_delivery_to_online_friends() {
    let (graph, mut net) = converged_net(200, 1);
    let mut rng = StdRng::seed_from_u64(5);
    let mut peers: Vec<u32> = (0..graph.num_nodes() as u32).collect();
    peers.shuffle(&mut rng);
    for &p in peers.iter().take(graph.num_nodes() / 4) {
        net.set_offline(p);
    }
    net.probe_round();
    let mut avail = Mean::new();
    for _ in 0..20 {
        let b = loop {
            let b = rng.gen_range(0..graph.num_nodes() as u32);
            if net.is_peer_online(b) {
                break b;
            }
        };
        avail.add(net.publish(b).availability());
    }
    assert!(
        avail.mean() > 0.99,
        "availability {} under 25% failure",
        avail.mean()
    );
}

#[test]
fn repeated_churn_waves_do_not_degrade_the_overlay() {
    let (graph, mut net) = converged_net(150, 2);
    let model = ChurnModel::new(LogNormal::with_median(0.1, 0.5), 0.5);
    let mut rng = StdRng::seed_from_u64(3);
    let n = graph.num_nodes();
    for _wave in 0..10 {
        let online: Vec<u32> = (0..n as u32).filter(|&p| net.is_peer_online(p)).collect();
        let gone = model.sample_departing_peers(&mut rng, &online, n);
        for &p in &gone {
            net.set_offline(p);
        }
        net.probe_round();
        for &p in &gone {
            net.set_online(p);
        }
    }
    // After the storm the overlay still delivers fully.
    let r = net.publish(0);
    assert_eq!(r.delivered, r.subscribers);
    // Link budgets were never violated along the way.
    for p in 0..n as u32 {
        assert!(net.table(p).long_links().len() <= net.k());
        assert!(net.table(p).incoming_links().len() <= net.k());
    }
}

/// Structural soundness of the link graph: budgets, caps and the mutual
/// long/incoming registration that the Admission handshake maintains.
fn assert_link_invariants(net: &SelectNetwork, when: &str) {
    let n = net.len() as u32;
    for p in 0..n {
        let long = net.table(p).long_links();
        let incoming = net.table(p).incoming_links();
        assert!(
            long.len() <= net.k(),
            "{when}: peer {p} exceeds K-link budget ({} > {})",
            long.len(),
            net.k()
        );
        assert!(
            incoming.len() <= net.k(),
            "{when}: peer {p} exceeds incoming cap ({} > {})",
            incoming.len(),
            net.k()
        );
        for &u in long {
            assert_ne!(u, p, "{when}: peer {p} holds a self link");
            assert!(
                net.table(u).incoming_links().contains(&p),
                "{when}: link {p}->{u} not registered incoming at {u}"
            );
        }
        for &u in incoming {
            assert!(
                net.table(u).long_links().contains(&p),
                "{when}: stale incoming {u}@{p} with no long link at {u}"
            );
        }
        let mut sorted = long.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(
            sorted.len(),
            long.len(),
            "{when}: duplicate long links at {p}"
        );
    }
}

#[test]
fn churn_waves_preserve_link_budget_and_mirror_invariants() {
    // Repeated blink churn with probe *and* gossip rounds interleaved must
    // never break the K budget, the incoming cap, or the mutual registration
    // established by the offer_incoming/remove_incoming handshake.
    let (graph, mut net) = converged_net(180, 9);
    assert_link_invariants(&net, "after converge");
    let model = ChurnModel::new(LogNormal::with_median(0.1, 0.5), 0.6);
    let mut rng = StdRng::seed_from_u64(13);
    let n = graph.num_nodes();
    for wave in 0..12 {
        let online: Vec<u32> = (0..n as u32).filter(|&p| net.is_peer_online(p)).collect();
        let gone = model.sample_departing_peers(&mut rng, &online, n);
        for &p in &gone {
            net.set_offline(p);
        }
        // Two probe rounds so low-CMA links actually get replaced, then one
        // gossip round so reconcile_links also runs against the churned state.
        net.probe_round();
        net.probe_round();
        assert_link_invariants(&net, &format!("wave {wave} after probes"));
        net.gossip_round();
        assert_link_invariants(&net, &format!("wave {wave} after gossip"));
        for &p in &gone {
            net.set_online(p);
        }
    }
    net.probe_round();
    assert_link_invariants(&net, "after the storm");
}

#[test]
fn mid_dissemination_departure_is_detected_next_round() {
    let (graph, mut net) = converged_net(150, 4);
    // Kill a peer that carries links, then check the recovery report sees it.
    let victim = (0..graph.num_nodes() as u32)
        .max_by_key(|&p| net.table(p).incoming_links().len())
        .unwrap();
    net.set_offline(victim);
    let report = net.probe_round();
    assert!(
        report.unresponsive > 0,
        "nobody noticed the death of a highly linked peer"
    );
    // Depending on CMA trust the links are kept or replaced, never silently
    // lost from the accounting.
    assert_eq!(
        report.unresponsive,
        report.kept + report.replaced + report.dropped
    );
}

/// Per-publication delivered paths, per-publication failed subscribers, and
/// the run's aggregated fault telemetry.
type FaultTrace = (Vec<RoutingTree>, Vec<Vec<u32>>, DeliveryTelemetry);

/// One full churn-plus-faults scenario: converge, run waves of departures
/// with probe rounds, publish with the fault plan active, record everything.
fn faulty_churn_trace(threads: usize) -> FaultTrace {
    let graph = datasets::Dataset::Facebook.generate_with_nodes(160, 11);
    let plan = FaultPlan::seeded(0xbeef)
        .with_drop_prob(0.12)
        .with_crash_prob(0.03)
        .with_max_delay_ms(20.0);
    let mut net = SelectNetwork::bootstrap(
        graph.clone(),
        SelectConfig::default()
            .with_seed(11)
            .with_threads(threads)
            .with_fault_plan(plan)
            .with_retry_max(3),
    );
    net.converge(300);
    for _ in 0..3 {
        net.probe_round();
    }
    let model = ChurnModel::new(LogNormal::with_median(0.1, 0.5), 0.5);
    let mut rng = StdRng::seed_from_u64(17);
    let n = graph.num_nodes();
    let mut paths = Vec::new();
    let mut failed = Vec::new();
    let mut telemetry = DeliveryTelemetry::default();
    let mut nonce = 0u64;
    for _wave in 0..6 {
        let online: Vec<u32> = (0..n as u32).filter(|&p| net.is_peer_online(p)).collect();
        let gone = model.sample_departing_peers(&mut rng, &online, n);
        for &p in &gone {
            net.set_offline(p);
        }
        net.probe_round();
        for _ in 0..4 {
            let b = loop {
                let b = rng.gen_range(0..n as u32);
                if net.is_peer_online(b) {
                    break b;
                }
            };
            nonce += 1;
            let r = net.publish_at(b, nonce);
            telemetry.absorb(&r.delivery);
            failed.push(r.tree.failed.clone());
            paths.push(r.tree);
        }
        for &p in &gone {
            net.set_online(p);
        }
    }
    (paths, failed, telemetry)
}

#[test]
fn seeded_fault_runs_replay_bit_identically_across_thread_counts() {
    let (p1, f1, t1) = faulty_churn_trace(1);
    let (p2, f2, t2) = faulty_churn_trace(2);
    let (p8, f8, t8) = faulty_churn_trace(8);
    assert!(
        t1.faults_injected() > 0,
        "the plan never fired; the replay check is vacuous"
    );
    assert_eq!(p1, p2, "threads=2 diverged from threads=1");
    assert_eq!(p1, p8, "threads=8 diverged from threads=1");
    assert_eq!(f1, f2);
    assert_eq!(f1, f8);
    assert_eq!(t1, t2);
    assert_eq!(t1, t8);
}

#[test]
fn flight_recorder_captures_a_complete_failed_journey_under_faults() {
    use select::obs::{JourneyStatus, Observer, TraceEvent};
    // Heavy losses with a tiny retry budget: some delivery must fail, and the
    // flight recorder must hold its complete hop-by-hop journey.
    let graph = datasets::Dataset::Facebook.generate_with_nodes(160, 11);
    let plan = FaultPlan::seeded(0xbeef)
        .with_drop_prob(0.35)
        .with_crash_prob(0.10);
    let mut net = SelectNetwork::bootstrap(
        graph,
        SelectConfig::default()
            .with_seed(11)
            .with_fault_plan(plan)
            .with_retry_max(1),
    );
    net.converge(300);
    let mut obs = Observer::for_peers(net.len()).with_tracing(256);
    let mut failed_total = 0usize;
    for b in 0..40u32 {
        let r = net.publish_observed(b, b as u64, &mut obs);
        failed_total += r.tree.failed.len();
    }
    assert!(failed_total > 0, "the lossy plan never lost a delivery");

    let fr = obs.flight.as_ref().expect("tracing is on");
    let failed: Vec<_> = fr.failed().collect();
    assert!(
        !failed.is_empty(),
        "{failed_total} deliveries failed but no journey is marked Failed"
    );
    for j in &failed {
        assert_eq!(j.status, JourneyStatus::Failed);
        let events = j.events();
        assert!(
            matches!(events.first(), Some(TraceEvent::Publish { .. })),
            "journey does not start at the publisher: {events:?}"
        );
        assert!(
            matches!(events.last(), Some(TraceEvent::Fail)) || j.truncated,
            "failed journey does not end with Fail: {events:?}"
        );
        assert!(
            events
                .iter()
                .any(|e| matches!(e, TraceEvent::Drop { .. } | TraceEvent::Crash { .. })),
            "failed journey records no injected fault: {events:?}"
        );
    }
    // The CLI-facing dump renders at least one of them.
    let mut dump = String::new();
    assert!(fr.dump_failed(16, &mut dump) >= 1);
    assert!(dump.contains("FAILED"), "dump missing status line:\n{dump}");
}

#[test]
fn naive_recovery_ablation_churns_more_links_than_cma() {
    let graph = datasets::Dataset::Slashdot.generate_with_nodes(150, 6);
    let build = |cma: bool| {
        let mut net = SelectNetwork::bootstrap(
            graph.clone(),
            SelectConfig::default().with_seed(6).with_cma_recovery(cma),
        );
        net.converge(300);
        for _ in 0..5 {
            net.probe_round();
        }
        net
    };
    let mut with_cma = build(true);
    let mut naive = build(false);
    // One blink: a set of peers goes down for a single probe round, then
    // returns.
    let victims: Vec<u32> = (0..30u32).collect();
    let blink = |net: &mut SelectNetwork| {
        for &v in &victims {
            net.set_offline(v);
        }
        let r = net.probe_round();
        for &v in &victims {
            net.set_online(v);
        }
        r
    };
    let r_cma = blink(&mut with_cma);
    let r_naive = blink(&mut naive);
    assert!(r_cma.kept > 0, "CMA should trust briefly-failed links");
    assert_eq!(r_naive.kept, 0);
    assert!(
        r_naive.replaced + r_naive.dropped >= r_cma.replaced + r_cma.dropped,
        "naive mode should churn at least as many links"
    );
}
