//! Integration tests for the extension features: arbitrary-topic pub/sub
//! and the message-level protocol execution.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use select::core::protocol::ProtocolNetwork;
use select::core::topics::{TopicId, TopicRegistry};
use select::core::{SelectConfig, SelectNetwork};
use select::graph::prelude::*;

#[test]
fn group_pubsub_on_dataset_preset() {
    let graph = datasets::Dataset::Facebook.generate_with_nodes(300, 5);
    let mut net = SelectNetwork::bootstrap(graph.clone(), SelectConfig::default().with_seed(5));
    net.converge(300);

    let mut registry = TopicRegistry::new();
    let mut rng = StdRng::seed_from_u64(5);
    for g in 0..10u64 {
        registry.subscribe_circle(TopicId(g), &net, rng.gen_range(0..300));
    }
    for g in 0..10u64 {
        let members = registry.subscribers(TopicId(g));
        let publisher = members[0];
        let r = net.publish_topic(&registry, TopicId(g), publisher);
        assert_eq!(r.delivered, r.subscribers, "group {g} failed");
        assert!(r.avg_relays <= r.avg_hops);
    }
}

#[test]
fn topic_delivery_survives_churn() {
    let graph = datasets::Dataset::Slashdot.generate_with_nodes(200, 7);
    let mut net = SelectNetwork::bootstrap(graph.clone(), SelectConfig::default().with_seed(7));
    net.converge(300);
    let mut registry = TopicRegistry::new();
    registry.subscribe_circle(TopicId(1), &net, 0);
    // A third of the members go offline.
    let members = registry.subscribers(TopicId(1));
    for &m in members.iter().skip(1).take(members.len() / 3) {
        net.set_offline(m);
    }
    net.probe_round();
    let r = net.publish_topic(&registry, TopicId(1), 0);
    assert_eq!(
        r.delivered, r.subscribers,
        "online members must still all receive"
    );
}

#[test]
fn message_level_protocol_full_pipeline() {
    let graph = datasets::Dataset::Slashdot.generate_with_nodes(200, 9);
    let net = SelectNetwork::bootstrap(graph.clone(), SelectConfig::default().with_seed(9));
    let mut proto = ProtocolNetwork::new(net);
    let rounds = proto.converge(300);
    assert!(rounds < 300, "protocol run must quiesce");
    let messages = proto.total_messages();
    assert!(messages > 0);

    let net = proto.into_network();
    let mut rng = StdRng::seed_from_u64(9);
    for _ in 0..10 {
        let b = rng.gen_range(0..200u32);
        let r = net.publish(b);
        assert_eq!(r.delivered, r.subscribers);
    }
    // Message-level construction also produces a socially clustered ring.
    let stats = net.overlay_stats(1_000);
    assert!(stats.clustering_ratio() < 1.0);
    assert_eq!(stats.social_link_fraction, 1.0);
}

#[test]
fn protocol_message_count_is_linear_per_round() {
    // Each round every online peer sends one request and receives at most
    // one reply per request: messages per round ∈ [n, 2n].
    let graph = datasets::Dataset::Slashdot.generate_with_nodes(150, 11);
    let net = SelectNetwork::bootstrap(graph, SelectConfig::default().with_seed(11));
    let mut proto = ProtocolNetwork::new(net);
    proto.round(); // requests in flight
    let before = proto.total_messages();
    proto.round();
    let per_round = proto.total_messages() - before;
    assert!(
        (150..=300).contains(&per_round),
        "messages per round {per_round} out of [n, 2n]"
    );
}
