//! Offline shim for `serde`. The workspace derives `Serialize`/
//! `Deserialize` on a few data types but never serializes anything (there
//! is no serde_json or bincode in the tree), so the derives are no-ops and
//! the traits are empty markers kept for name resolution.

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

pub use serde_derive::{Deserialize, Serialize};
