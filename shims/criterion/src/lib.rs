//! Offline shim for the `criterion` crate: enough of the 0.5 API to compile
//! and run this workspace's benches. Measurements are simple wall-clock
//! medians over a fixed iteration budget — adequate for spotting order-of-
//! magnitude regressions, not statistically rigorous.

use std::time::{Duration, Instant};

/// How batched inputs are sized (API parity; the shim treats all the same).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Per-iteration timer handle passed to `bench_function` closures.
pub struct Bencher {
    /// Total time of the measured closure across iterations.
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` on fresh inputs from `setup`; setup time excluded.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the iteration count per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    /// Runs one benchmark and prints its mean time per iteration.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: self.sample_size,
        };
        f(&mut b);
        let per_iter = b.elapsed.as_secs_f64() / b.iters.max(1) as f64;
        println!(
            "bench {}/{}: {:.3} ms/iter ({} iters)",
            self.name,
            id,
            per_iter * 1e3,
            b.iters
        );
        self
    }

    /// Ends the group (no-op in the shim).
    pub fn finish(&mut self) {}
}

/// Benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Fresh driver with default settings.
    pub fn new() -> Self {
        Criterion {}
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 10,
            _parent: self,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.benchmark_group("default").bench_function(id, f);
        self
    }
}

/// Re-export for `use criterion::black_box` call sites.
pub use std::hint::black_box;

/// Declares a benchmark group runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::new();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
