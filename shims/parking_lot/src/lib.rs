//! Offline shim for `parking_lot`: `Mutex`/`RwLock` with the poison-free
//! API (guards returned directly, not wrapped in `Result`) on top of
//! `std::sync`.

/// Mutual exclusion lock; `lock()` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates an unlocked mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the data.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poisoning (parking_lot semantics).
    pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts the lock without blocking.
    pub fn try_lock(&self) -> Option<std::sync::MutexGuard<'_, T>> {
        self.inner.try_lock().ok()
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Reader–writer lock; guards returned directly.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates an unlocked rwlock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the data.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::{Mutex, RwLock};

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(l.into_inner(), 6);
    }
}
