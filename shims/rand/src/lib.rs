//! Offline shim for the `rand` crate (0.8 API subset).
//!
//! The build environment has no network access and no vendored registry, so
//! this workspace ships a small, deterministic replacement implementing
//! exactly the surface the code base uses: [`Rng`] (`gen`, `gen_range`,
//! `gen_bool`), [`SeedableRng`] (`seed_from_u64`), [`rngs::StdRng`] and
//! [`seq::SliceRandom`] (`shuffle`, `choose`).
//!
//! `StdRng` is xoshiro256++ seeded through SplitMix64 — not the ChaCha12
//! generator of upstream rand, so value streams differ from crates.io, but
//! every generator in this workspace is seeded explicitly and all tests
//! assert *determinism and statistics*, never literal draws.

/// Low-level generator interface: everything derives from `next_u64`.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits (upper half of `next_u64`).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from the generator's raw bits,
/// mirroring rand's `Standard` distribution.
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// A range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased integer sampling in `[0, bound)` via Lemire-style rejection.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Rejection zone keeps the draw exactly uniform.
    let zone = bound.wrapping_neg() % bound;
    loop {
        let v = rng.next_u64();
        if v >= zone {
            return v % bound;
        }
    }
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return u128::sample(rng) as $t;
                }
                lo.wrapping_add(uniform_u64(rng, span as u64) as $t)
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + <$t as Standard>::sample(rng) * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                lo + <$t as Standard>::sample(rng) * (hi - lo)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform value of `T` (rand's `Standard` distribution).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform value in `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0,1]");
        f64::sample(self) < p
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8])
    where
        Self: Sized,
    {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

impl<R: RngCore> Rng for R {}

/// Seedable generators (rand's `SeedableRng`, `seed_from_u64` subset).
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(state: u64) -> Self;

    /// Builds the generator from OS entropy — unavailable offline, so this
    /// shim derives it from the system clock; prefer `seed_from_u64`.
    fn from_entropy() -> Self {
        let t = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e3779b97f4a7c15);
        Self::seed_from_u64(t)
    }
}

pub mod rngs {
    //! Named generator types.

    use super::{RngCore, SeedableRng};

    /// Deterministic generator: xoshiro256++ (Blackman & Vigna), seeded by
    /// SplitMix64 as its authors recommend. Fast, passes BigCrush, and —
    /// unlike upstream's ChaCha12 — dependency-free.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Upstream alias: a small, fast generator. Same engine as [`StdRng`]
    /// in this shim.
    pub type SmallRng = StdRng;
}

pub mod seq {
    //! Sequence-related sampling (`SliceRandom` subset).

    use super::{Rng, RngCore};

    /// Shuffling and choosing on slices.
    pub trait SliceRandom {
        type Item;

        /// Uniform random element, `None` on an empty slice.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// In-place Fisher–Yates shuffle.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }
    }
}

/// Convenience re-export of the flat-`use` names rand 0.8 offers.
pub mod prelude {
    pub use super::rngs::{SmallRng, StdRng};
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
            let i = rng.gen_range(0..=5u32);
            assert!(i <= 5);
        }
    }

    #[test]
    fn unit_float_distribution_is_sane() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} far from 0.5");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(13);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2700..3300).contains(&hits), "hits {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = StdRng::seed_from_u64(3);
        let v = [1, 2, 3];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(*v.choose(&mut rng).unwrap());
        }
        assert_eq!(seen.len(), 3);
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
