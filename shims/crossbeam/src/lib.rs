//! Offline shim for the `crossbeam` crate.
//!
//! Provides the two pieces this workspace uses — `crossbeam::channel`
//! (unbounded MPMC channels) and `crossbeam::scope` (scoped threads) — on
//! top of `std::sync` and `std::thread::scope`, with the crossbeam 0.8 call
//! signatures so callers compile unchanged.

pub mod channel {
    //! Unbounded MPMC channel built on `Mutex<VecDeque>` + `Condvar`.

    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Inner<T> {
        queue: Mutex<Queue<T>>,
        ready: Condvar,
    }

    struct Queue<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// Error on `send` to a channel with no remaining receivers.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Error on `recv` from an empty, sender-less channel.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error on `try_recv`.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel is currently empty.
        Empty,
        /// All senders are gone and the buffer is drained.
        Disconnected,
    }

    /// Error on `recv_timeout`.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the deadline.
        Timeout,
        /// All senders are gone and the buffer is drained.
        Disconnected,
    }

    /// Sending half; cloneable.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// Receiving half; cloneable (messages go to exactly one receiver).
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            queue: Mutex::new(Queue {
                items: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                inner: Arc::clone(&inner),
            },
            Receiver { inner },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues `msg`; fails only when every receiver is dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut q = self.inner.queue.lock().unwrap();
            if q.receivers == 0 {
                return Err(SendError(msg));
            }
            q.items.push_back(msg);
            drop(q);
            self.inner.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.queue.lock().unwrap().senders += 1;
            Sender {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut q = self.inner.queue.lock().unwrap();
            q.senders -= 1;
            if q.senders == 0 {
                drop(q);
                self.inner.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.inner.queue.lock().unwrap();
            loop {
                if let Some(item) = q.items.pop_front() {
                    return Ok(item);
                }
                if q.senders == 0 {
                    return Err(RecvError);
                }
                q = self.inner.ready.wait(q).unwrap();
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self.inner.queue.lock().unwrap();
            if let Some(item) = q.items.pop_front() {
                Ok(item)
            } else if q.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Blocks up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut q = self.inner.queue.lock().unwrap();
            loop {
                if let Some(item) = q.items.pop_front() {
                    return Ok(item);
                }
                if q.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _res) = self.inner.ready.wait_timeout(q, deadline - now).unwrap();
                q = guard;
            }
        }

        /// Blocking iterator that ends when all senders disconnect.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.inner.queue.lock().unwrap().receivers += 1;
            Receiver {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.inner.queue.lock().unwrap().receivers -= 1;
        }
    }

    /// Iterator over received messages (see [`Receiver::iter`]).
    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }
}

/// Scoped-thread handle mirroring `crossbeam::thread::Scope`: `spawn`
/// passes the scope back into the closure so nested spawns work.
#[derive(Clone, Copy)]
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

/// Join handle for a thread spawned inside [`scope`].
pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
}

impl<T> ScopedJoinHandle<'_, T> {
    /// Waits for the thread and returns its result (`Err` on panic).
    pub fn join(self) -> std::thread::Result<T> {
        self.inner.join()
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a thread bound to the scope; the closure receives the scope
    /// (crossbeam convention — callers typically ignore it with `|_|`).
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let scope = *self;
        ScopedJoinHandle {
            inner: self.inner.spawn(move || f(scope)),
        }
    }
}

/// Runs `f` with a thread scope; all spawned threads are joined before this
/// returns. The `Result` mirrors crossbeam: `Err` carries the panic payload
/// of the closure itself (unjoined-thread panics propagate as in std).
pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
where
    F: for<'scope> FnOnce(Scope<'scope, 'env>) -> R,
{
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        std::thread::scope(|s| f(Scope { inner: s }))
    }))
}

pub mod thread {
    //! Alias module so `crossbeam::thread::scope` also resolves.
    pub use super::{scope, Scope, ScopedJoinHandle};
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvTimeoutError, TryRecvError};
    use std::time::Duration;

    #[test]
    fn channel_roundtrip_fifo() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn disconnect_surfaces() {
        let (tx, rx) = unbounded::<u32>();
        tx.send(9).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(9));
        assert!(rx.recv().is_err());
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn timeout_elapses() {
        let (_tx, rx) = unbounded::<u32>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
    }

    #[test]
    fn cross_thread_delivery() {
        let (tx, rx) = unbounded();
        let h = std::thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        let got: Vec<u32> = rx.iter().collect();
        h.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn scope_joins_and_returns() {
        let data = [1u64, 2, 3, 4];
        let total = super::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|c| s.spawn(move |_| c.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn scope_propagates_panic_as_err() {
        let r = super::scope(|s| {
            let h = s.spawn(|_| panic!("boom"));
            h.join()
        })
        .unwrap();
        assert!(r.is_err());
    }
}
