//! Offline shim for the `bytes` crate: [`Bytes`], a reference-counted,
//! cheaply cloneable (`O(1)`) immutable byte buffer. Only the constructors
//! and accessors this workspace uses are provided.

use std::sync::Arc;

/// Immutable shared byte buffer. `clone` is a refcount bump.
#[derive(Clone)]
pub struct Bytes {
    repr: Repr,
}

#[derive(Clone)]
enum Repr {
    Static(&'static [u8]),
    Shared(Arc<[u8]>),
}

impl Bytes {
    /// Empty buffer.
    pub const fn new() -> Self {
        Bytes {
            repr: Repr::Static(&[]),
        }
    }

    /// Zero-copy view of a `'static` slice.
    pub const fn from_static(bytes: &'static [u8]) -> Self {
        Bytes {
            repr: Repr::Static(bytes),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// True when the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn as_slice(&self) -> &[u8] {
        match &self.repr {
            Repr::Static(s) => s,
            Repr::Shared(a) => a,
        }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes {
            repr: Repr::Shared(v.into()),
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from_static(s)
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes(len={})", self.len())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

#[cfg(test)]
mod tests {
    use super::Bytes;

    #[test]
    fn constructors_and_len() {
        assert_eq!(Bytes::new().len(), 0);
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::from_static(b"abc").len(), 3);
        assert_eq!(Bytes::from(vec![1u8, 2, 3, 4]).len(), 4);
    }

    #[test]
    fn clone_shares_contents() {
        let a = Bytes::from(vec![7u8; 1024]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(&b[..4], &[7, 7, 7, 7]);
    }
}
