//! Offline shim for `serde_derive`: the `Serialize`/`Deserialize` derives
//! expand to nothing. Nothing in this workspace serializes — the derives
//! exist on a handful of data types for downstream compatibility — so
//! no-op expansion keeps those types compiling without the real serde
//! machinery.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`. Registers the `#[serde(...)]` helper
/// attribute so field annotations like `#[serde(skip)]` parse.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`. Registers the `#[serde(...)]` helper
/// attribute so field annotations like `#[serde(skip)]` parse.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
