//! Offline shim for `serde_derive`: the `Serialize`/`Deserialize` derives
//! expand to nothing. Nothing in this workspace serializes — the derives
//! exist on a handful of data types for downstream compatibility — so
//! no-op expansion keeps those types compiling without the real serde
//! machinery.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
