//! Offline shim for the `proptest` crate.
//!
//! Implements the subset of the proptest 1.x API this workspace's property
//! tests use: the [`proptest!`] macro, [`Strategy`] with `prop_map` /
//! `prop_flat_map`, [`any`], range and tuple strategies, [`Just`],
//! `collection::{vec, btree_set}`, `prop_assert!` / `prop_assert_eq!`, and
//! [`ProptestConfig::with_cases`].
//!
//! Differences from upstream: inputs are generated from a fixed
//! deterministic seed (derived from the test name) and failing cases are
//! **not shrunk** — the failing input is printed as-is. That keeps runs
//! reproducible without persistence files.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Runner configuration: number of random cases per property.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Cases generated per property (upstream default: 256).
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Failure raised by `prop_assert!`-style macros; carries the message.
#[derive(Debug)]
pub struct TestCaseError(pub String);

/// Result type the property bodies produce.
pub type TestCaseResult = Result<(), TestCaseError>;

/// A generator of random values of `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { base: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns —
    /// for dependent inputs (e.g. an index into a generated vec).
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { base: self, f }
    }

    /// Boxes the strategy (API parity helper).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Boxed, type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn StrategyObj<Value = T>>);

trait StrategyObj {
    type Value;
    fn generate_obj(&self, rng: &mut StdRng) -> Self::Value;
}

impl<S: Strategy> StrategyObj for S {
    type Value = S::Value;
    fn generate_obj(&self, rng: &mut StdRng) -> S::Value {
        self.generate(rng)
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        self.0.generate_obj(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.base.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.base.generate(rng)).generate(rng)
    }
}

/// Strategy producing one constant value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen::<bool>()
    }
}

impl Arbitrary for f64 {
    /// Finite f64, mixing unit-interval and scaled magnitudes.
    fn arbitrary(rng: &mut StdRng) -> Self {
        let mag = rng.gen_range(-300i32..300) as f64;
        let v: f64 = rng.gen::<f64>() * 2.0 - 1.0;
        v * mag.exp2()
    }
}

/// The `any::<T>()` entry point.
pub struct Any<T>(std::marker::PhantomData<T>);

/// Strategy over all values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_strategy_range {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_strategy_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_strategy_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
impl_strategy_tuple!(A: 0);
impl_strategy_tuple!(A: 0, B: 1);
impl_strategy_tuple!(A: 0, B: 1, C: 2);
impl_strategy_tuple!(A: 0, B: 1, C: 2, D: 3);
impl_strategy_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_strategy_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

pub mod collection {
    //! Collection strategies (`vec`, `btree_set`).

    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Size specification: a fixed size or a half-open range.
    pub trait SizeRange {
        fn pick(&self, rng: &mut StdRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut StdRng) -> usize {
            *self
        }
    }

    impl SizeRange for core::ops::Range<usize> {
        fn pick(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl SizeRange for core::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub fn vec<S: Strategy, Z: SizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { element, size }
    }

    /// See [`vec`].
    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>`; the size bound is a *target* —
    /// duplicates collapse, like upstream's best-effort semantics.
    pub fn btree_set<S: Strategy, Z: SizeRange>(element: S, size: Z) -> BTreeSetStrategy<S, Z>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    /// See [`btree_set`].
    pub struct BTreeSetStrategy<S, Z> {
        element: S,
        size: Z,
    }

    impl<S: Strategy, Z: SizeRange> Strategy for BTreeSetStrategy<S, Z>
    where
        S::Value: Ord,
    {
        type Value = std::collections::BTreeSet<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let target = self.size.pick(rng);
            let mut set = std::collections::BTreeSet::new();
            // Bounded attempts so narrow domains cannot loop forever.
            for _ in 0..target.saturating_mul(4).max(8) {
                if set.len() >= target {
                    break;
                }
                set.insert(self.element.generate(rng));
            }
            set
        }
    }
}

/// Derives the per-test RNG seed from the test's module path and name, so
/// every property sees a stable, independent stream.
pub fn seed_for(test_name: &str) -> u64 {
    // FNV-1a over the name.
    let mut h: u64 = 0xcbf29ce484222325;
    for b in test_name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Fresh generator for case `case` of the test seeded by `seed`.
pub fn case_rng(seed: u64, case: u32) -> StdRng {
    StdRng::seed_from_u64(seed ^ (case as u64).wrapping_mul(0x9e3779b97f4a7c15))
}

/// Asserts a condition inside a property, failing the case with context.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: `{:?}` == `{:?}`: {}",
                l,
                r,
                format!($($fmt)*)
            )));
        }
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: `{:?}` != `{:?}`", l, r);
    }};
}

/// Defines property tests: each `fn name(binding in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` random inputs through the body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr) $(
        $(#[doc = $doc:expr])*
        #[test]
        fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[doc = $doc])*
        #[test]
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let seed = $crate::seed_for(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..cfg.cases {
                let mut __rng = $crate::case_rng(seed, case);
                $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)+
                let __result: $crate::TestCaseResult = (|| {
                    $body
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err($crate::TestCaseError(msg)) = __result {
                    // Regenerate the inputs from the same stream for the
                    // report (the body consumed the originals).
                    let mut __rng2 = $crate::case_rng(seed, case);
                    let __inputs = format!(
                        concat!($("  ", stringify!($pat), " = {:?}\n",)+),
                        $($crate::Strategy::generate(&($strat), &mut __rng2)),+
                    );
                    panic!(
                        "property '{}' failed at case {}/{}:\n{}\ninputs:\n{}",
                        stringify!($name),
                        case + 1,
                        cfg.cases,
                        msg,
                        __inputs
                    );
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Everything the `use proptest::prelude::*` idiom expects in scope.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Range strategies stay in range.
        #[test]
        fn range_strategy_in_bounds(x in 3usize..9, y in -1.5f64..1.5) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-1.5..1.5).contains(&y));
        }

        /// Tuple + vec strategies compose.
        #[test]
        fn vec_strategy_sizes(v in collection::vec((0u32..10, 0u32..10), 2..20)) {
            prop_assert!(v.len() >= 2 && v.len() < 20);
            for (a, b) in v {
                prop_assert!(a < 10 && b < 10);
            }
        }

        /// prop_map and prop_flat_map transform values.
        #[test]
        fn mapping_works(
            s in (1usize..5).prop_flat_map(|n| (Just(n), collection::vec(0u32..100, n..n + 1)))
        ) {
            let (n, v) = s;
            prop_assert_eq!(v.len(), n);
        }

        /// btree_set yields sorted unique values.
        #[test]
        fn btree_set_unique(s in collection::btree_set(any::<u64>(), 2..30)) {
            let v: Vec<_> = s.iter().collect();
            for w in v.windows(2) {
                prop_assert!(w[0] < w[1]);
            }
        }
    }

    #[test]
    fn failures_report_inputs() {
        let result = std::panic::catch_unwind(|| {
            let cfg = ProptestConfig::with_cases(4);
            let seed = seed_for("inner");
            for case in 0..cfg.cases {
                let mut rng = case_rng(seed, case);
                let x = Strategy::generate(&(0u32..10), &mut rng);
                let r: TestCaseResult = (|| {
                    prop_assert!(x < 100, "never fires");
                    Ok(())
                })();
                r.unwrap();
            }
        });
        assert!(result.is_ok());
    }

    use crate::{case_rng, seed_for};

    #[test]
    fn deterministic_across_runs() {
        let mut a = case_rng(seed_for("t"), 3);
        let mut b = case_rng(seed_for("t"), 3);
        let s = collection::vec(0u64..1000, 5..10);
        assert_eq!(
            Strategy::generate(&s, &mut a),
            Strategy::generate(&s, &mut b)
        );
    }
}
