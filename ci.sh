#!/usr/bin/env sh
# Repo CI gate: formatting, lints, full test suite. Run before every push.
set -eu
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo bench --no-run (benches must keep compiling)"
cargo bench --no-run --workspace --offline

echo "==> cargo test -q"
cargo test -q --workspace --offline

echo "==> count-allocs feature (the counting allocator must keep compiling and passing)"
cargo test -q --offline -p osn-bench --features count-allocs

echo "==> fault-injection suite (explicit, so a filtered test run can't skip it)"
cargo test -q --offline --test churn_failure_injection --test properties

echo "==> golden-state pin (flattened storage must stay bit-identical)"
cargo test -q --offline --test golden_state --test parallel_determinism

echo "==> hot-path bench (quick preset, release) + schema check"
cargo run -q --release --offline -p osn-bench --features count-allocs --bin repro -- --quick hotpath
cargo run -q --release --offline -p osn-bench --bin repro -- hotpath --check

echo "==> ci.sh: all green"
