#!/usr/bin/env sh
# Repo CI gate: formatting, lints, full test suite. Run before every push.
set -eu
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo test -q"
cargo test -q --workspace --offline

echo "==> ci.sh: all green"
