#!/usr/bin/env sh
# Repo CI gate: formatting, lints, full test suite. Run before every push.
set -eu
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> selint (workspace determinism/invariant lints must be clean)"
cargo run -q --offline -p selint

echo "==> selint --json report artifact (selint_report.json)"
cargo run -q --offline -p selint -- --json > selint_report.json
grep -q '"schema":"selint-report/v2"' selint_report.json

# Negative controls must exit with code 1 exactly: 0 means the rule went
# blind, anything else (2 = internal error, 101 = panic) means selint broke
# and its "findings" can't be trusted either way.
expect_findings() {
    _desc="$1"; shift
    set +e
    cargo run -q --offline -p selint -- "$@" >/dev/null 2>&1
    _code=$?
    set -e
    if [ "$_code" -ne 1 ]; then
        echo "selint negative control '$_desc' exited $_code (want 1: findings)" >&2
        exit 1
    fi
}

echo "==> selint negative control (the seeded fixture must trip every rule)"
expect_findings "violations fixture" crates/selint/fixtures/violations.rs

echo "==> selint negative control (wirespace tree: unhandled WireMsg variant)"
expect_findings "wirespace fixture" crates/selint/fixtures/wirespace

echo "==> cargo bench --no-run (benches must keep compiling)"
cargo bench --no-run --workspace --offline

echo "==> cargo test -q"
cargo test -q --workspace --offline

echo "==> count-allocs feature (counting allocator + publish alloc-budget gate)"
cargo test -q --offline -p osn-bench --features count-allocs

echo "==> observability suite (histograms, flight recorder, exporters)"
cargo test -q --offline -p osn-obs

echo "==> fault-injection suite (explicit, so a filtered test run can't skip it)"
cargo test -q --offline --test churn_failure_injection --test properties

echo "==> golden-state pin (flattened storage must stay bit-identical)"
cargo test -q --offline --test golden_state --test parallel_determinism

echo "==> incremental-vs-rebuild equivalence (delta LSH/strength state, batched publish)"
cargo test -q --offline -p select-core equivalence
cargo test -q --offline -p select-core batched_publish
cargo test -q --offline --test golden_state batched

echo "==> overlay auditor (every invariant on every round, plus the golden pin)"
cargo test -q --offline -p select-core --features audit
cargo test -q --offline --features audit --test overlay_audit

echo "==> wire suite: codec (round-trips + hostile-input rejection, no panics)"
cargo test -q --offline -p osn-net codec
cargo test -q --offline -p osn-net --test codec_props

echo "==> wire suite: loopback TCP smoke (200-peer socket fan-out, paper payload)"
cargo test -q --offline -p osn-net --release socket::

echo "==> wire suite: cross-transport conformance (inproc vs TCP delivery sets)"
cargo test -q --offline --release --test wire_conformance

if [ "${CI_MIRI:-0}" = "1" ]; then
    echo "==> miri (CI_MIRI=1): scratch arena + publish pipeline under the interpreter"
    if rustup component list 2>/dev/null | grep -q "miri.*(installed)"; then
        cargo miri test -p select-core scratch
    else
        echo "miri not installed; skipping (install with: rustup component add miri)"
    fi
fi

if [ "${CI_TSAN:-0}" = "1" ]; then
    echo "==> thread sanitizer (CI_TSAN=1): superstep engine under TSan"
    if rustc +nightly --version >/dev/null 2>&1 \
        && rustup component list --toolchain nightly 2>/dev/null | grep -q "rust-src.*(installed)"; then
        RUSTFLAGS="-Zsanitizer=thread" \
            cargo +nightly test -p osn-sim engine -Z build-std --target "$(rustc -vV | sed -n 's/^host: //p')"
    else
        echo "nightly + rust-src not installed; skipping (the deterministic"
        echo "thread-sweep model test in crates/sim/src/engine.rs covers the"
        echo "compute/apply handoff on stable)"
    fi
fi

echo "==> hot-path bench (quick preset, release) + schema check"
cargo run -q --release --offline -p osn-bench --features count-allocs --bin repro -- --quick hotpath
cargo run -q --release --offline -p osn-bench --bin repro -- hotpath --check

echo "==> observability overhead bench (quick preset, release) + <=5% gate"
cargo run -q --release --offline -p osn-bench --bin repro -- --quick obs
cargo run -q --release --offline -p osn-bench --bin repro -- obs --check

echo "==> wire transport bench (quick preset, release) + schema check"
cargo run -q --release --offline -p osn-bench --bin repro -- --quick wire
cargo run -q --release --offline -p osn-bench --bin repro -- wire --check

echo "==> wiretrace suite (trace-tree bit-identity at threads {1,8}, complete"
echo "    TCP span chains, <=5% tracing overhead on both transports)"
cargo run -q --release --offline -p osn-bench --bin repro -- --quick wiretrace

echo "==> full-scale convergence gate (63k Facebook, release) + budget check"
cargo run -q --release --offline -p osn-bench --features count-allocs --bin repro -- scale --check

echo "==> ci.sh: all green"
