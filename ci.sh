#!/usr/bin/env sh
# Repo CI gate: formatting, lints, full test suite. Run before every push.
set -eu
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo bench --no-run (benches must keep compiling)"
cargo bench --no-run --workspace --offline

echo "==> cargo test -q"
cargo test -q --workspace --offline

echo "==> fault-injection suite (explicit, so a filtered test run can't skip it)"
cargo test -q --offline --test churn_failure_injection --test properties

echo "==> ci.sh: all green"
