//! # select — facade crate for the SELECT reproduction
//!
//! Re-exports the full public API of the workspace: the SELECT system itself
//! ([`core`]), the social-graph substrate ([`graph`]), the P2P overlay
//! substrate ([`overlay`]), LSH ([`lsh`]), the simulation engine ([`sim`]),
//! the baseline pub/sub systems ([`baselines`]), the realistic threaded
//! runtime ([`net`]) and the deterministic observability layer ([`obs`]).
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the system inventory.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use osn_baselines as baselines;
pub use osn_graph as graph;
pub use osn_lsh as lsh;
pub use osn_net as net;
pub use osn_obs as obs;
pub use osn_overlay as overlay;
pub use osn_sim as sim;
pub use select_core as core;

/// Commonly used items across all crates.
pub mod prelude {
    pub use osn_graph::prelude::*;
}
