//! `select` — command-line front end for the SELECT reproduction.
//!
//! ```text
//! select demo    [--dataset NAME] [--nodes N] [--seed S]   converge + publish
//! select compare [--dataset NAME] [--nodes N] [--seed S]   all five systems
//! select churn   [--dataset NAME] [--nodes N] [--steps T]  availability storm
//! select stats   [--dataset NAME] [--nodes N]              overlay statistics
//! ```
//!
//! All commands accept `--threads N` (round-loop workers; `0` = available
//! parallelism — results are bit-identical for every value). Commands that
//! converge print the per-round telemetry the run recorded.
//!
//! Fault injection (demo and churn): `--drop-prob P` drops each transmission
//! with probability P, `--crash-prob P` fails relays mid-publication,
//! `--delay-ms MS` adds up-to-MS delivery jitter, `--fault-seed S` seeds the
//! plan (defaults to `--seed`), and `--retries N` bounds the ack-driven
//! retransmission waves (default 3; 0 = fire-and-forget). All decisions are
//! deterministic in the seed, so a faulty run replays bit-identically.
//!
//! Transport replay (demo): `--transport inproc|tcp` additionally replays
//! each demo publication's routing tree over a real message-passing
//! transport — one OS thread per peer speaking the binary wire format, over
//! crossbeam channels (`inproc`) or loopback TCP sockets (`tcp`, see
//! DESIGN.md §12) — with the same fault plan applied at the transport
//! boundary, and reports delivered counts and wall latency per publication.
//!
//! Observability (demo and churn): `--metrics-out FILE` writes the publish
//! histograms (hops, stretch, retries, relay load, latency) after the run —
//! Prometheus text format if FILE ends in `.prom`, JSON otherwise. When a
//! transport replay ran, its wire telemetry (per-tag frame/byte counters,
//! retransmissions, reconnects, garbage frames) is merged into the same
//! snapshot as `select_wire_*` gauges.
//! `--trace-failed` keeps a flight recorder on every publication and dumps
//! the hop-by-hop journeys of failed deliveries to stderr.
//!
//! Wire tracing (demo): `--trace-out FILE` (requires `--transport`) stamps
//! a trace context into every replayed publish frame, drains the span
//! buffers peers recorded, and writes the assembled cross-peer trace trees
//! — canonical form, per-hop and critical-path latency, and the replayed
//! hop-by-hop journeys — to FILE. Try:
//! `select demo --transport tcp --trace-out traces.txt`.
//!
//! For regenerating the paper's tables and figures use the `repro` binary in
//! `osn-bench`; this CLI is the quick interactive front end.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use select::baselines::{build_system, SystemKind};
use select::core::{SelectConfig, SelectNetwork};
use select::graph::prelude::*;
use select::net::{publish_over, SocketNetwork, StatsSnapshot, ThreadedNetwork, Transport};
use select::obs::{FlightRecorder, MetricsSnapshot, Observer, TraceAssembler};
use select::sim::{ChurnModel, FaultPlan, Mean};
use std::fmt::Write as _;

/// Which real transport `--transport` replays demo publications over.
#[derive(Clone, Copy, PartialEq, Eq)]
enum TransportKind {
    /// Crossbeam channels between peer threads (the reference transport).
    Inproc,
    /// Loopback TCP sockets framing the binary wire format.
    Tcp,
}

struct Opts {
    dataset: datasets::Dataset,
    nodes: usize,
    seed: u64,
    steps: usize,
    threads: usize,
    drop_prob: f64,
    crash_prob: f64,
    delay_ms: f64,
    fault_seed: Option<u64>,
    retries: usize,
    metrics_out: Option<String>,
    trace_failed: bool,
    trace_out: Option<String>,
    transport: Option<TransportKind>,
}

impl Opts {
    fn fault_plan(&self) -> FaultPlan {
        FaultPlan::seeded(self.fault_seed.unwrap_or(self.seed))
            .with_drop_prob(self.drop_prob)
            .with_crash_prob(self.crash_prob)
            .with_max_delay_ms(self.delay_ms)
    }

    /// Builds the publish observer when `--metrics-out` or `--trace-failed`
    /// asked for one; `None` keeps the publish path un-instrumented.
    fn observer(&self, n: usize) -> Option<Observer> {
        if self.metrics_out.is_none() && !self.trace_failed {
            return None;
        }
        let o = Observer::for_peers(n);
        Some(if self.trace_failed {
            o.with_tracing(64)
        } else {
            o
        })
    }
}

/// Writes `--metrics-out` (Prometheus text for `.prom`, JSON otherwise) and
/// dumps failed journeys to stderr when tracing was on. `wire` carries the
/// transport replay's telemetry, merged in as `select_wire_*` gauges.
fn flush_observer(opts: &Opts, obs: &Observer, wire: Option<(&str, StatsSnapshot)>) {
    if let Some(fr) = &obs.flight {
        let mut dump = String::new();
        let failed = fr.dump_failed(16, &mut dump);
        if failed > 0 {
            eprint!("[select] {failed} failed journey(s):\n{dump}");
        } else {
            eprintln!(
                "[select] no failed deliveries among the last {} traced journeys",
                fr.recorded().min(fr.capacity() as u64)
            );
        }
    }
    let Some(path) = &opts.metrics_out else {
        return;
    };
    let m = &obs.metrics;
    let mut snap = MetricsSnapshot::new()
        .with_histogram("select_publish_hops", m.hops.clone())
        .with_histogram("select_publish_stretch", m.stretch.clone())
        .with_histogram("select_publish_retries", m.retries.clone())
        .with_histogram("select_publish_latency_virtual_ms", m.latency_ms.clone())
        .with_histogram("select_relay_load", m.relay_load_histogram());
    if let Some((transport, stats)) = wire {
        snap = stats.merge_into(snap, transport);
    }
    let rendered = if path.ends_with(".prom") {
        snap.to_prometheus()
    } else {
        snap.to_json()
    };
    match std::fs::write(path, rendered) {
        Ok(()) => eprintln!("[select] metrics written to {path}"),
        Err(e) => eprintln!("[select] cannot write {path}: {e}"),
    }
}

fn parse(args: &[String]) -> Result<(String, Opts), String> {
    let mut cmd = None;
    let mut opts = Opts {
        dataset: datasets::Dataset::Facebook,
        nodes: 600,
        seed: 42,
        steps: 20,
        threads: 0,
        drop_prob: 0.0,
        crash_prob: 0.0,
        delay_ms: 0.0,
        fault_seed: None,
        retries: 3,
        metrics_out: None,
        trace_failed: false,
        trace_out: None,
        transport: None,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--dataset" => {
                let name = it.next().ok_or("--dataset needs a value")?;
                opts.dataset = match name.to_ascii_lowercase().as_str() {
                    "facebook" => datasets::Dataset::Facebook,
                    "twitter" => datasets::Dataset::Twitter,
                    "slashdot" => datasets::Dataset::Slashdot,
                    "gplus" | "googleplus" => datasets::Dataset::GooglePlus,
                    other => return Err(format!("unknown dataset '{other}'")),
                };
            }
            "--nodes" => {
                opts.nodes = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--nodes needs a number")?;
            }
            "--seed" => {
                opts.seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--seed needs a number")?;
            }
            "--steps" => {
                opts.steps = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--steps needs a number")?;
            }
            "--threads" => {
                opts.threads = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--threads needs a number")?;
            }
            "--drop-prob" => {
                opts.drop_prob = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|p| (0.0..=1.0).contains(p))
                    .ok_or("--drop-prob needs a probability in [0, 1]")?;
            }
            "--crash-prob" => {
                opts.crash_prob = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|p| (0.0..=1.0).contains(p))
                    .ok_or("--crash-prob needs a probability in [0, 1]")?;
            }
            "--delay-ms" => {
                opts.delay_ms = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|d: &f64| *d >= 0.0)
                    .ok_or("--delay-ms needs a non-negative number")?;
            }
            "--fault-seed" => {
                opts.fault_seed = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("--fault-seed needs a number")?,
                );
            }
            "--retries" => {
                opts.retries = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--retries needs a number")?;
            }
            "--metrics-out" => {
                opts.metrics_out = Some(it.next().ok_or("--metrics-out needs a path")?.clone());
            }
            "--trace-failed" => {
                opts.trace_failed = true;
            }
            "--trace-out" => {
                opts.trace_out = Some(it.next().ok_or("--trace-out needs a path")?.clone());
            }
            "--transport" => {
                let name = it.next().ok_or("--transport needs 'inproc' or 'tcp'")?;
                opts.transport = Some(match name.to_ascii_lowercase().as_str() {
                    "inproc" => TransportKind::Inproc,
                    "tcp" => TransportKind::Tcp,
                    other => return Err(format!("unknown transport '{other}'")),
                });
            }
            other if cmd.is_none() && !other.starts_with("--") => {
                cmd = Some(other.to_string());
            }
            other => return Err(format!("unexpected argument '{other}'")),
        }
    }
    if opts.trace_out.is_some() && opts.transport.is_none() {
        return Err("--trace-out traces the wire replay; pass --transport inproc|tcp too".into());
    }
    Ok((cmd.unwrap_or_else(|| "demo".into()), opts))
}

fn converged(opts: &Opts) -> (SocialGraph, SelectNetwork) {
    let graph = opts.dataset.generate_with_nodes(opts.nodes, opts.seed);
    eprintln!(
        "[select] {} preset: {} users, avg degree {:.1}",
        opts.dataset.name(),
        graph.num_nodes(),
        metrics::average_degree(&graph)
    );
    let plan = opts.fault_plan();
    if plan.is_active() {
        eprintln!(
            "[select] fault plan: drop {:.1}%, crash {:.1}%, delay ≤{:.0} ms, retries {}",
            opts.drop_prob * 100.0,
            opts.crash_prob * 100.0,
            opts.delay_ms,
            opts.retries
        );
    }
    let mut net = SelectNetwork::bootstrap(
        graph.clone(),
        SelectConfig::default()
            .with_seed(opts.seed)
            .with_threads(opts.threads)
            .with_fault_plan(plan)
            .with_retry_max(opts.retries),
    );
    let conv = net.converge(300);
    eprintln!(
        "[select] {} in {} rounds: {}",
        if conv.converged {
            "converged"
        } else {
            "round cap hit"
        },
        conv.rounds,
        conv.telemetry.summary()
    );
    // Per-round telemetry: every round until quiescence, one line each.
    for r in &conv.telemetry.rounds {
        eprintln!(
            "[select]   round {:3}: {:4} msgs, {:3} id moves ({:.4} ring), \
             {:4} link changes, bucket hit rate {:5.1}%, {:.2} ms",
            r.round,
            r.messages,
            r.id_moves,
            r.id_movement,
            r.link_changes,
            r.bucket_hit_rate() * 100.0,
            r.wall_nanos as f64 / 1e6
        );
    }
    (graph, net)
}

fn cmd_demo(opts: &Opts) {
    let (graph, net) = converged(opts);
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let fault_mode = opts.fault_plan().is_active();
    let mut observer = opts.observer(graph.num_nodes());
    let mut trees = Vec::new();
    for nonce in 1..=5u64 {
        let b = rng.gen_range(0..graph.num_nodes() as u32);
        let r = match observer.as_mut() {
            Some(obs) => net.publish_observed(b, nonce, obs),
            None => net.publish_at(b, nonce),
        };
        println!(
            "publish from {b:5}: {:3}/{:3} delivered, {:.2} hops, {:.3} relays",
            r.delivered, r.subscribers, r.avg_hops, r.avg_relays
        );
        if fault_mode {
            println!("                   {}", r.delivery.summary());
        }
        trees.push((b, r.tree));
    }
    // The replay runs before the observer flush so its wire telemetry can
    // ride along in the metrics snapshot.
    let wire = opts
        .transport
        .and_then(|kind| replay_over_transport(opts, kind, graph.num_nodes(), &trees));
    if let Some(obs) = &observer {
        let (p50, p95, p99) = obs.metrics.latency_ms.tails();
        eprintln!("[select] delivery latency p50/p95/p99: {p50}/{p95}/{p99} virtual ms");
        flush_observer(opts, obs, wire.as_ref().map(|(name, s)| (*name, *s)));
    }
}

/// `--transport`: replays the demo's routing trees over a real
/// message-passing transport — the same wire vocabulary, the same fault
/// plan at the transport boundary — and reports per-publication wall
/// latency. The in-simulation results above and this replay agree on the
/// delivery *sets* by construction (the conformance suite pins it).
///
/// Returns the transport's name and frozen wire telemetry so the caller
/// can fold them into `--metrics-out`.
fn replay_over_transport(
    opts: &Opts,
    kind: TransportKind,
    n: usize,
    trees: &[(u32, select::core::RoutingTree)],
) -> Option<(&'static str, StatsSnapshot)> {
    let plan = opts.fault_plan();
    let retry_max = opts.retries as u32;
    let (name, mut transport): (&'static str, Box<dyn Transport>) = match kind {
        TransportKind::Inproc => {
            eprintln!("[select] replaying over in-process channel transport ({n} peer threads)");
            (
                "inproc",
                Box::new(ThreadedNetwork::spawn_with_faults(n, plan, retry_max)),
            )
        }
        TransportKind::Tcp => {
            eprintln!("[select] replaying over loopback TCP transport ({n} peer sockets)");
            match SocketNetwork::spawn_with_faults(n, plan, retry_max) {
                Ok(t) => ("tcp", Box::new(t)),
                Err(e) => {
                    eprintln!("[select] cannot spawn socket transport: {e}");
                    return None;
                }
            }
        }
    };
    if opts.trace_out.is_some() {
        transport.set_tracing(true);
    }
    let payload = bytes::Bytes::from(vec![0x5Eu8; 4 * 1024]);
    for (i, (b, tree)) in trees.iter().enumerate() {
        let t0 = std::time::Instant::now();
        // A short overall budget keeps the per-retry ack windows (budget
        // split retry_max + 1 ways) demo-sized; dropped frames only surface
        // by a window expiring.
        let r = publish_over(
            transport.as_mut(),
            tree,
            payload.clone(),
            std::time::Duration::from_secs(2),
            retry_max,
            i as u64 + 1,
        );
        let wall = t0.elapsed();
        println!(
            "wire publish from {b:5}: {:3} delivered, {:2} drops, {:2} retries, {:7.2} ms wall",
            r.delivered_to.len(),
            r.drops_injected,
            r.retries,
            wall.as_secs_f64() * 1_000.0
        );
    }
    transport.shutdown();
    if let Some(path) = &opts.trace_out {
        // Peers flushed their span buffers at shutdown; assemble them into
        // cross-peer publish trees.
        let mut asm = TraceAssembler::new();
        asm.absorb(transport.drain_spans());
        write_trace_out(path, name, &asm);
    }
    Some((name, transport.stats().snapshot()))
}

/// Renders assembled wire traces — canonical trees, latency breakdowns,
/// and the replayed hop-by-hop journeys — into `path`.
fn write_trace_out(path: &str, transport: &str, asm: &TraceAssembler) {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# wire traces over {transport}: {} span(s) across {} publication(s)",
        asm.len(),
        asm.trace_ids().len()
    );
    out.push_str(&asm.render_all());
    for id in asm.trace_ids() {
        let lat = asm.latency(id);
        let chain = lat
            .critical_path
            .iter()
            .map(|p| p.to_string())
            .collect::<Vec<_>>()
            .join(" -> ");
        let _ = writeln!(
            out,
            "trace {id} latency: critical path [{chain}], per-hop {:?} us, end-to-end {} us",
            lat.per_hop_us, lat.critical_path_us
        );
    }
    let mut fr = FlightRecorder::with_capacity(asm.len().max(1));
    asm.replay_into(&mut fr);
    for j in fr.journeys() {
        let _ = writeln!(out, "{j}");
    }
    match std::fs::write(path, out) {
        Ok(()) => eprintln!("[select] wire traces written to {path}"),
        Err(e) => eprintln!("[select] cannot write {path}: {e}"),
    }
}

fn cmd_compare(opts: &Opts) {
    let graph = opts.dataset.generate_with_nodes(opts.nodes, opts.seed);
    let k = ((opts.nodes as f64).log2().round() as usize).max(2);
    println!(
        "{:<10} {:>9} {:>9} {:>13} {:>11}",
        "system", "avg hops", "relays", "availability", "iterations"
    );
    for kind in SystemKind::ALL {
        let sys = build_system(kind, graph.clone(), k, opts.seed);
        let mut rng = StdRng::seed_from_u64(opts.seed);
        let (mut hops, mut relays, mut avail) = (Mean::new(), Mean::new(), Mean::new());
        for _ in 0..30 {
            let b = rng.gen_range(0..opts.nodes as u32);
            if graph.degree(UserId(b)) == 0 {
                continue;
            }
            let r = sys.publish(b);
            if r.delivered > 0 {
                hops.add(r.avg_hops);
                relays.add(r.avg_relays);
            }
            avail.add(r.availability());
        }
        println!(
            "{:<10} {:>9.2} {:>9.3} {:>12.1}% {:>11}",
            kind.name(),
            hops.mean(),
            relays.mean(),
            avail.mean() * 100.0,
            sys.construction_iterations()
                .map_or("-".into(), |i| i.to_string()),
        );
    }
}

fn cmd_churn(opts: &Opts) {
    let (graph, mut net) = converged(opts);
    for _ in 0..5 {
        net.probe_round();
    }
    let model = ChurnModel::default();
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let n = graph.num_nodes();
    let mut overall = Mean::new();
    let mut delivery = select::core::DeliveryTelemetry::default();
    let mut observer = opts.observer(n);
    let mut nonce = 0u64;
    for step in 1..=opts.steps {
        let online: Vec<u32> = (0..n as u32).filter(|&p| net.is_peer_online(p)).collect();
        let gone = model.sample_departing_peers(&mut rng, &online, n);
        for &p in &gone {
            net.set_offline(p);
        }
        let rec = net.probe_round();
        let mut avail = Mean::new();
        for _ in 0..5 {
            let b = loop {
                let b = rng.gen_range(0..n as u32);
                if net.is_peer_online(b) {
                    break b;
                }
            };
            nonce += 1;
            let r = match observer.as_mut() {
                Some(obs) => net.publish_observed(b, nonce, obs),
                None => net.publish_at(b, nonce),
            };
            delivery.absorb(&r.delivery);
            avail.add(r.availability());
        }
        overall.add(avail.mean());
        println!(
            "step {step:3}: {:4} departed, availability {:6.2}%, {} links kept on trust, {} replaced",
            gone.len(),
            avail.mean() * 100.0,
            rec.kept,
            rec.replaced
        );
        for &p in &gone {
            net.set_online(p);
        }
    }
    println!("overall availability: {:.2}%", overall.mean() * 100.0);
    if opts.fault_plan().is_active() {
        println!("fault telemetry     : {}", delivery.summary());
    }
    if let Some(obs) = &observer {
        flush_observer(opts, obs, None);
    }
}

fn cmd_stats(opts: &Opts) {
    let (_, net) = converged(opts);
    let s = net.overlay_stats(5_000);
    println!("online peers            : {}", s.online);
    println!("friend distance (ring)  : {:.4}", s.mean_friend_distance);
    println!("random distance (ring)  : {:.4}", s.mean_random_distance);
    println!("clustering ratio        : {:.3}", s.clustering_ratio());
    println!(
        "friend coverage         : {:.1}%",
        s.friend_coverage * 100.0
    );
    println!(
        "long links social       : {:.1}%",
        s.social_link_fraction * 100.0
    );
    println!("mean connections        : {:.1}", s.mean_connections);
    println!("max connections         : {}", s.max_connections);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse(&args) {
        Ok((cmd, opts)) => match cmd.as_str() {
            "demo" => cmd_demo(&opts),
            "compare" => cmd_compare(&opts),
            "churn" => cmd_churn(&opts),
            "stats" => cmd_stats(&opts),
            other => {
                eprintln!("unknown command '{other}'; see the source header for usage");
                std::process::exit(2);
            }
        },
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}
